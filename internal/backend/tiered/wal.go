package tiered

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The write-ahead log that makes the hot tier durable. It reuses the
// repository's log idiom (length-prefixed CRC32 records, numbered
// segment files, torn-tail truncation on the final segment) but stays
// deliberately dumb: it has no index — the hot memtable IS the index —
// and records are only ever replayed front to back on open. Segments
// are deleted from the front once every record in them is either
// superseded by a newer record or durably flushed into the cold tier.

// walOp mirrors the tiered mutation set.
const (
	walPut  byte = 1
	walDel  byte = 2
	walDrop byte = 3
)

// walHeaderLen is the record prelude: uint32 payload length + uint32
// IEEE CRC32 of the payload, little-endian.
const walHeaderLen = 8

// walMaxRecordBytes bounds a decoded payload so a corrupt length prefix
// cannot drive a giant allocation during replay.
const walMaxRecordBytes = 1 << 30

// errWALCorrupt reports a record that failed validation in a non-final
// segment, where truncation would silently drop acknowledged data.
var errWALCorrupt = errors.New("tiered: corrupt WAL record in non-final segment")

type walSegment struct {
	id   int
	path string
	f    *os.File
	size int64
}

// wal is the segmented write-ahead log. It is not internally
// synchronized: the tiered store serializes access under its own lock.
type wal struct {
	dir      string
	segBytes int64
	segs     []*walSegment // ascending id; last is active
	unsynced int64
	enc      []byte
}

func walSegmentName(id int) string { return fmt.Sprintf("wal-%08d.log", id) }

func listWALSegmentIDs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// openWAL opens (or creates) the log rooted at dir without replaying
// it; the caller replays via replay before accepting writes.
func openWAL(dir string, segBytes int64) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	w := &wal{dir: dir, segBytes: segBytes}
	ids, err := listWALSegmentIDs(dir)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		seg, err := w.openSegment(id)
		if err != nil {
			w.closeFiles()
			return nil, err
		}
		w.segs = append(w.segs, seg)
	}
	if len(w.segs) == 0 {
		if err := w.addSegment(1); err != nil {
			w.closeFiles()
			return nil, err
		}
	}
	return w, nil
}

func (w *wal) openSegment(id int) (*walSegment, error) {
	path := filepath.Join(w.dir, walSegmentName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tiered: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tiered: %w", err)
	}
	return &walSegment{id: id, path: path, f: f, size: st.Size()}, nil
}

func (w *wal) addSegment(id int) error {
	seg, err := w.openSegment(id)
	if err != nil {
		return err
	}
	w.segs = append(w.segs, seg)
	return w.syncDir()
}

func (w *wal) syncDir() error {
	d, err := os.Open(w.dir)
	if err != nil {
		return fmt.Errorf("tiered: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("tiered: sync wal dir: %w", err)
	}
	return nil
}

func (w *wal) closeFiles() {
	for _, seg := range w.segs {
		seg.f.Close()
	}
}

func walAppendStr(buf []byte, v string) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(v)))
	buf = append(buf, tmp[:n]...)
	return append(buf, v...)
}

// append writes one record and returns the id of the segment it landed
// in (the hot row's truncation obligation anchor). fsync is batched by
// the store; a write error is returned for the store's sticky werr.
func (w *wal) append(op byte, table, pkey, ckey string, value []byte) (segID int, err error) {
	payload := w.enc[:0]
	payload = append(payload, op)
	payload = walAppendStr(payload, table)
	payload = walAppendStr(payload, pkey)
	if op != walDrop {
		payload = walAppendStr(payload, ckey)
	}
	if op == walPut {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(value)))
		payload = append(payload, tmp[:n]...)
		payload = append(payload, value...)
	}
	rec := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walHeaderLen:], payload)
	w.enc = payload

	active := w.segs[len(w.segs)-1]
	if active.size > 0 && active.size+int64(len(rec)) > w.segBytes {
		if err := w.rotate(); err != nil {
			return active.id, err
		}
		active = w.segs[len(w.segs)-1]
	}
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return active.id, fmt.Errorf("tiered: wal append: %w", err)
	}
	active.size += int64(len(rec))
	w.unsynced += int64(len(rec))
	return active.id, nil
}

// rotate fsyncs the active segment and opens the next one.
func (w *wal) rotate() error {
	active := w.segs[len(w.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("tiered: wal sync before rotate: %w", err)
	}
	w.unsynced = 0
	return w.addSegment(active.id + 1)
}

// fsync makes all appended records durable.
func (w *wal) fsync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.segs[len(w.segs)-1].f.Sync(); err != nil {
		return fmt.Errorf("tiered: wal sync: %w", err)
	}
	w.unsynced = 0
	return nil
}

// activeID returns the id of the segment currently receiving appends.
func (w *wal) activeID() int { return w.segs[len(w.segs)-1].id }

// truncateActive empties the active segment. The caller has proven
// every record in it superseded or durably cold (a clean close of a
// fully-drained store).
func (w *wal) truncateActive() error {
	active := w.segs[len(w.segs)-1]
	if active.size == 0 {
		return nil
	}
	if err := active.f.Truncate(0); err != nil {
		return fmt.Errorf("tiered: truncate drained wal: %w", err)
	}
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("tiered: %w", err)
	}
	active.size = 0
	w.unsynced = 0
	return nil
}

// dropThrough closes and deletes every segment with id <= maxID. The
// caller has proven all their records' effects durable in the cold tier
// (or superseded). The active segment is never dropped.
func (w *wal) dropThrough(maxID int) error {
	i := 0
	for i < len(w.segs)-1 && w.segs[i].id <= maxID {
		seg := w.segs[i]
		seg.f.Close()
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("tiered: drop wal segment: %w", err)
		}
		i++
	}
	if i == 0 {
		return nil
	}
	w.segs = append([]*walSegment(nil), w.segs[i:]...)
	return w.syncDir()
}

// replay scans every segment in order, calling apply for each valid
// record with the id of its segment. A torn record at the tail of the
// final segment is truncated away (crash mid-append); corruption
// anywhere else fails the open.
func (w *wal) replay(apply func(segID int, op byte, table, pkey, ckey string, value []byte) error) error {
	for si, seg := range w.segs {
		if err := w.replaySegment(seg, si == len(w.segs)-1, apply); err != nil {
			return err
		}
	}
	return nil
}

func (w *wal) replaySegment(seg *walSegment, final bool, apply func(segID int, op byte, table, pkey, ckey string, value []byte) error) error {
	var (
		off    int64
		header [walHeaderLen]byte
	)
	corruptAt := int64(-1)
	for off < seg.size {
		if seg.size-off < walHeaderLen {
			corruptAt = off
			break
		}
		if _, err := seg.f.ReadAt(header[:], off); err != nil {
			return fmt.Errorf("tiered: wal replay %s: %w", seg.path, err)
		}
		plen := int64(binary.LittleEndian.Uint32(header[0:4]))
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if plen > walMaxRecordBytes || off+walHeaderLen+plen > seg.size {
			corruptAt = off
			break
		}
		payload := make([]byte, plen)
		if _, err := seg.f.ReadAt(payload, off+walHeaderLen); err != nil {
			return fmt.Errorf("tiered: wal replay %s: %w", seg.path, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			corruptAt = off
			break
		}
		if err := decodeWALPayload(seg.id, payload, apply); err != nil {
			// CRC-valid but undecodable is version skew or a writer bug,
			// not a torn write; truncating would drop acknowledged data.
			return fmt.Errorf("tiered: undecodable WAL record in %s at offset %d: %w", seg.path, off, err)
		}
		off += walHeaderLen + plen
	}
	if corruptAt < 0 {
		return nil
	}
	if !final {
		return fmt.Errorf("%w: %s at offset %d", errWALCorrupt, seg.path, corruptAt)
	}
	if err := seg.f.Truncate(corruptAt); err != nil {
		return fmt.Errorf("tiered: truncate torn wal tail of %s: %w", seg.path, err)
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("tiered: %w", err)
	}
	seg.size = corruptAt
	return nil
}

func decodeWALPayload(segID int, payload []byte, apply func(segID int, op byte, table, pkey, ckey string, value []byte) error) error {
	if len(payload) < 1 {
		return fmt.Errorf("empty payload")
	}
	pos := 1
	str := func() (string, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return "", fmt.Errorf("bad string length")
		}
		pos += n
		if uint64(len(payload)-pos) < v {
			return "", fmt.Errorf("string exceeds payload")
		}
		out := string(payload[pos : pos+int(v)])
		pos += int(v)
		return out, nil
	}
	op := payload[0]
	table, err := str()
	if err != nil {
		return err
	}
	pkey, err := str()
	if err != nil {
		return err
	}
	var ckey string
	var value []byte
	switch op {
	case walPut:
		if ckey, err = str(); err != nil {
			return err
		}
		vlen, n := binary.Uvarint(payload[pos:])
		if n <= 0 || uint64(len(payload)-pos-n) < vlen {
			return fmt.Errorf("bad value length")
		}
		pos += n
		value = append([]byte(nil), payload[pos:pos+int(vlen)]...)
	case walDel:
		if ckey, err = str(); err != nil {
			return err
		}
	case walDrop:
	default:
		return fmt.Errorf("unknown op 0x%02x", op)
	}
	return apply(segID, op, table, pkey, ckey, value)
}
