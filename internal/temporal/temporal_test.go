package temporal

import (
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	iv := NewInterval(10, 20)
	cases := []struct {
		t    Time
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {25, false},
	}
	for _, c := range cases {
		if got := iv.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := NewInterval(0, 10)
	cases := []struct {
		b    Interval
		want bool
	}{
		{NewInterval(10, 20), false}, // adjacent half-open
		{NewInterval(9, 20), true},
		{NewInterval(-5, 0), false},
		{NewInterval(-5, 1), true},
		{NewInterval(3, 7), true},
		{NewInterval(-5, 20), true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(5, 15)
	got, ok := a.Intersect(b)
	if !ok || got != NewInterval(5, 10) {
		t.Errorf("Intersect = %v, %v; want [5,10), true", got, ok)
	}
	if _, ok := a.Intersect(NewInterval(10, 20)); ok {
		t.Errorf("adjacent intervals must not intersect")
	}
}

func TestIntervalUnion(t *testing.T) {
	got := NewInterval(0, 5).Union(NewInterval(10, 20))
	if got != NewInterval(0, 20) {
		t.Errorf("Union = %v, want [0,20)", got)
	}
}

func TestEmptyAndDuration(t *testing.T) {
	if !(Interval{Start: 5, End: 5}).Empty() {
		t.Error("zero-width interval should be empty")
	}
	if NewInterval(3, 9).Duration() != 6 {
		t.Error("Duration(3,9) != 6")
	}
	if Always.Duration() != MaxTime {
		t.Error("Always.Duration should saturate to MaxTime")
	}
	if (Interval{Start: 9, End: 3}).Duration() != 0 {
		t.Error("inverted interval duration should be 0")
	}
}

func TestAlwaysContainsEverything(t *testing.T) {
	// Any timepoint within the supported domain [MinTime, MaxTime) is
	// contained in Always.
	f := func(x int64) bool {
		t := Time(x) % MaxTime
		return Always.Contains(t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectWithinBoth(t *testing.T) {
	// Property: any point in the intersection is in both intervals, and
	// intersection is symmetric.
	f := func(a0, a1, b0, b1 int32, p int32) bool {
		a := Interval{Start: Time(min(a0, a1)), End: Time(max(a0, a1))}
		b := Interval{Start: Time(min(b0, b1)), End: Time(max(b0, b1))}
		iv, ok := a.Intersect(b)
		iv2, ok2 := b.Intersect(a)
		if ok != ok2 || iv != iv2 {
			return false
		}
		if !ok {
			return true
		}
		t0 := iv.Start + Time(uint32(p))%max(iv.Duration(), 1)
		return a.Contains(t0) && b.Contains(t0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewIntervalPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInterval(5, 3) should panic")
		}
	}()
	NewInterval(5, 3)
}

func TestMidpoint(t *testing.T) {
	if NewInterval(10, 20).Midpoint() != 15 {
		t.Error("Midpoint(10,20) != 15")
	}
}
