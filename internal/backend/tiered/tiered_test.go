package tiered

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hgs/internal/backend"
)

// fastOptions makes background flushing aggressive so tests exercise
// tier migration within milliseconds.
func fastOptions() Options {
	return Options{
		HotBytes:      4 << 10,
		CompactRate:   -1, // unlimited: tests should not sleep
		FlushInterval: time.Millisecond,
	}
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func val(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64) }

func TestHotReadsServeWithoutColdReads(t *testing.T) {
	// A hot tier large enough for the whole working set: every read is
	// a hot hit and the cold tier is never consulted for a row.
	s := open(t, t.TempDir(), Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), val(i))
	}
	for i := 0; i < 50; i++ {
		v, ok := s.Get("deltas", "p0", fmt.Sprintf("c%03d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d wrong", i)
		}
	}
	tc := s.TierCounters()
	if tc.HotHits != 50 {
		t.Fatalf("hot hits = %d, want 50", tc.HotHits)
	}
	if tc.ColdReads != 0 {
		t.Fatalf("cold reads = %d, want 0 (all-hot working set)", tc.ColdReads)
	}
	if tc.HotBytes == 0 {
		t.Fatal("hot bytes gauge empty with resident rows")
	}
}

func TestBackgroundFlushMigratesToCold(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	const n = 400
	for i := 0; i < n; i++ {
		s.Put("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "hot tier to drain to the low-water mark", func() bool {
		return s.TierCounters().HotBytes <= 4<<10/2
	})
	tc := s.TierCounters()
	if tc.FlushedRows == 0 || tc.FlushedBytes == 0 {
		t.Fatalf("no flush activity: %+v", tc)
	}
	// Every row is still readable; old rows come from the cold tier.
	for i := 0; i < n; i++ {
		v, ok := s.Get("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d lost after flush", i)
		}
	}
	if s.TierCounters().ColdReads == 0 {
		t.Fatal("expected cold reads for flushed rows")
	}
	// Scans merge the tiers in clustering order.
	rows := s.ScanPrefix("deltas", "p00", "")
	if len(rows) != n/4 {
		t.Fatalf("scan returned %d rows, want %d", len(rows), n/4)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].CKey >= rows[i].CKey {
			t.Fatal("merged scan out of order")
		}
	}
}

func TestWALSegmentsRetireAfterFlush(t *testing.T) {
	opts := fastOptions()
	opts.WALSegmentBytes = 1 << 10
	dir := t.TempDir()
	s := open(t, dir, opts)
	defer s.Close()
	for i := 0; i < 300; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	// ~27 segments are written; all but the handful pinned by still-hot
	// rows (the low-water residue) plus the active segment must retire.
	waitFor(t, "WAL retirement", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.wal.segs) <= 6
	})
}

func TestRetireWALSyncsSupersedingRecords(t *testing.T) {
	// A segment's pending count can reach zero because every record in
	// it was superseded by records in a newer segment. If that newer
	// segment's bytes are still only in the page cache when the old one
	// is deleted, a power cut loses the row entirely — so retirement
	// must fsync the WAL before dropping segments.
	opts := Options{
		HotBytes:        1 << 30,   // nothing migrates: retirement is purely by supersession
		FlushInterval:   time.Hour, // retirement runs only when driven below
		WALSegmentBytes: 512,
		WALSyncBytes:    1 << 30, // the batch fsync never fires on its own
	}
	s := open(t, t.TempDir(), opts)
	defer s.Close()
	// Overwrite one row until the WAL rotates several times: every
	// record outside the active segment is superseded by one inside it,
	// and the active segment's tail records are unsynced.
	for i := 0; i < 40; i++ {
		s.Put("deltas", "p0", "c0", val(i))
	}
	s.mu.Lock()
	segs, unsynced := len(s.wal.segs), s.wal.unsynced
	s.mu.Unlock()
	if segs < 2 || unsynced == 0 {
		t.Fatalf("precondition not reached: %d segments, %d unsynced bytes", segs, unsynced)
	}
	s.flushChunk(false) // empty batch: runs WAL retirement
	s.mu.Lock()
	segs, unsynced = len(s.wal.segs), s.wal.unsynced
	s.mu.Unlock()
	if segs != 1 {
		t.Fatalf("superseded segments did not retire: %d remain", segs)
	}
	if unsynced != 0 {
		t.Fatalf("WAL segments retired with %d unsynced bytes outstanding", unsynced)
	}
}

func TestFlushQueueBoundedUnderBudgetChurn(t *testing.T) {
	// The flusher only trims the queue's stale prefix, and a long-lived
	// row below the low-water mark pins the head forever. Overwrite
	// churn behind it must still be compacted away, or the queue grows
	// by one entry per Put for the life of the store.
	s := open(t, t.TempDir(), Options{HotBytes: 1 << 30, FlushInterval: time.Hour})
	defer s.Close()
	s.Put("deltas", "p0", "pinned", val(0))
	for i := 0; i < 10000; i++ {
		s.Put("deltas", "p0", "churn", val(i%251))
	}
	s.mu.Lock()
	qlen := len(s.queue)
	s.mu.Unlock()
	// Compaction triggers once stale entries reach half of a 64+ entry
	// queue, so steady state stays under ~64 for two live rows.
	if qlen > 100 {
		t.Fatalf("flush queue holds %d entries for 2 live rows", qlen)
	}
}

func TestUnderBudgetWorkingSetStaysHot(t *testing.T) {
	// Draining is latched by exceeding the budget, not by the low-water
	// mark alone: a working set between HotBytes/2 and HotBytes must
	// stay resident, or the effective hot tier is half the configured
	// budget and reads pay cold-tier latency for no reason.
	s := open(t, t.TempDir(), Options{HotBytes: 64 << 10, CompactRate: -1, FlushInterval: time.Millisecond})
	defer s.Close()
	for i := 0; i < 600; i++ { // ~41 KB: above low water, under budget
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	time.Sleep(50 * time.Millisecond) // dozens of flush ticks
	if tc := s.TierCounters(); tc.FlushedRows != 0 {
		t.Fatalf("flusher migrated %d rows of an under-budget working set", tc.FlushedRows)
	}
}

func TestScanCountsShadowedRowsAsHot(t *testing.T) {
	// A row resident in both tiers (rewritten after its old version went
	// cold) is served from the hot tier; a scan must bill it to HotHits
	// only, or hit ratios sink and the cold-read latency surcharge is
	// charged for memory-served rows.
	s := open(t, t.TempDir(), Options{HotBytes: 1 << 30, FlushInterval: time.Hour})
	defer s.Close()
	s.cold.Put("deltas", "p0", "c1", val(1)) // stale cold copy
	s.cold.Put("deltas", "p0", "c2", val(3)) // cold-only row
	s.Put("deltas", "p0", "c0", val(0))      // hot-only row
	s.Put("deltas", "p0", "c1", val(2))      // shadows the cold copy
	rows := s.ScanPrefix("deltas", "p0", "")
	if len(rows) != 3 || !bytes.Equal(rows[1].Value, val(2)) {
		t.Fatalf("merged scan wrong: %d rows", len(rows))
	}
	tc := s.TierCounters()
	if tc.HotHits != 2 || tc.ColdReads != 1 {
		t.Fatalf("scan billed hot=%d cold=%d, want hot=2 cold=1 (shadowed row is hot-served)", tc.HotHits, tc.ColdReads)
	}
}

func TestReopenRecoversBothTiers(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, fastOptions())
	const n = 200
	for i := 0; i < n; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	s.Delete("deltas", "p0", "c0000")
	waitFor(t, "some flushing", func() bool { return s.TierCounters().FlushedRows > 0 })
	stored := s.StoredBytes()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, fastOptions())
	defer r.Close()
	if got := r.StoredBytes(); got != stored {
		t.Fatalf("stored bytes after reopen: %d, want %d", got, stored)
	}
	if _, ok := r.Get("deltas", "p0", "c0000"); ok {
		t.Fatal("deleted row resurrected after reopen")
	}
	for i := 1; i < n; i++ {
		v, ok := r.Get("deltas", "p0", fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d lost across reopen", i)
		}
	}
}

func TestKillMidFlushLosesNothing(t *testing.T) {
	// Throttle flushing hard so the kill lands with the hot tier
	// partially migrated: some rows only in the WAL, some mid-chunk,
	// some already cold.
	opts := Options{
		HotBytes:      2 << 10,
		CompactRate:   64 << 10,
		FlushInterval: time.Millisecond,
	}
	dir := t.TempDir()
	s := open(t, dir, opts)
	const n = 500
	for i := 0; i < n; i++ {
		s.Put("deltas", fmt.Sprintf("p%02d", i%8), fmt.Sprintf("c%04d", i), val(i))
		if i == n/2 {
			s.Delete("deltas", "p01", "c0001")
		}
	}
	s.Kill() // crash: no final fsync, flusher abandoned where it was

	r := open(t, dir, opts)
	defer r.Close()
	for i := 0; i < n; i++ {
		pk, ck := fmt.Sprintf("p%02d", i%8), fmt.Sprintf("c%04d", i)
		v, ok := r.Get("deltas", pk, ck)
		if i == 1 {
			if ok {
				t.Fatal("deleted row survived the crash")
			}
			continue
		}
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d lost in crash (pk=%s ck=%s)", i, pk, ck)
		}
	}
}

func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{HotBytes: 1 << 30, FlushInterval: time.Hour})
	for i := 0; i < 20; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), val(i))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	// Simulate a crash mid-append: garbage at the WAL tail.
	walDir := filepath.Join(dir, "wal")
	ids, err := listWALSegmentIDs(walDir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("wal segments: %v %v", ids, err)
	}
	last := filepath.Join(walDir, walSegmentName(ids[len(ids)-1]))
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-half-record")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := open(t, dir, Options{HotBytes: 1 << 30})
	defer r.Close()
	for i := 0; i < 20; i++ {
		if _, ok := r.Get("deltas", "p0", fmt.Sprintf("c%03d", i)); !ok {
			t.Fatalf("acknowledged row %d lost to torn-tail truncation", i)
		}
	}
}

func TestDeleteDuringFlushDoesNotResurrect(t *testing.T) {
	// Delete rows continuously while the flusher migrates under a tight
	// budget; deleted rows must stay gone (the flush gate orders the
	// cold write and the delete).
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	const n = 300
	for i := 0; i < n; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
		if i%3 == 0 {
			if !s.Delete("deltas", "p0", fmt.Sprintf("c%04d", i)) {
				t.Fatalf("delete of fresh row %d reported absent", i)
			}
		}
	}
	waitFor(t, "hot drain", func() bool { return s.TierCounters().HotBytes <= 2<<10 })
	for i := 0; i < n; i++ {
		_, ok := s.Get("deltas", "p0", fmt.Sprintf("c%04d", i))
		if i%3 == 0 && ok {
			t.Fatalf("deleted row %d resurrected", i)
		}
		if i%3 != 0 && !ok {
			t.Fatalf("row %d lost", i)
		}
	}
}

func TestDropPartitionSpansTiers(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.Put("deltas", "keep", fmt.Sprintf("c%03d", i), val(i))
		s.Put("deltas", "drop", fmt.Sprintf("c%03d", i), val(i))
	}
	waitFor(t, "some flushing", func() bool { return s.TierCounters().FlushedRows > 0 })
	s.DropPartition("deltas", "drop")
	if rows := s.ScanPrefix("deltas", "drop", ""); len(rows) != 0 {
		t.Fatalf("dropped partition still has %d rows", len(rows))
	}
	pks := s.PartitionKeys("deltas")
	if len(pks) != 1 || pks[0] != "keep" {
		t.Fatalf("partition keys = %v, want [keep]", pks)
	}
}

func TestMultiGetSpansTiers(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	const n = 200
	for i := 0; i < n; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "hot drain", func() bool { return s.TierCounters().HotBytes <= 2<<10 })
	// Keep a few rows hot again.
	for i := 0; i < 5; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	reqs := make([]backend.KeyRead, 0, n+1)
	for i := 0; i < n; i++ {
		reqs = append(reqs, backend.KeyRead{Table: "deltas", PKey: "p0", CKey: fmt.Sprintf("c%04d", i)})
	}
	reqs = append(reqs, backend.KeyRead{Table: "deltas", PKey: "p0", CKey: "absent"})
	out := s.MultiGet(reqs)
	for i := 0; i < n; i++ {
		if !bytes.Equal(out[i], val(i)) {
			t.Fatalf("batch row %d wrong", i)
		}
	}
	if out[n] != nil {
		t.Fatal("absent key must be nil in batch result")
	}
}

func TestColdCompactionRunsInBackground(t *testing.T) {
	opts := fastOptions()
	opts.Cold.CompactMinDead = 1 << 10
	s := open(t, t.TempDir(), opts)
	defer s.Close()
	// Overwrite the same keys repeatedly: each overwrite strands the old
	// cold record as dead bytes once flushed. Every round exceeds the
	// 4 KiB budget so the drain latch engages.
	for round := 0; round < 30; round++ {
		for i := 0; i < 80; i++ {
			s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), val(round))
		}
		waitFor(t, "flush round", func() bool { return s.TierCounters().HotBytes <= 2<<10 })
	}
	waitFor(t, "background cold compaction", func() bool {
		return s.TierCounters().Compactions > 0
	})
	for i := 0; i < 80; i++ {
		v, ok := s.Get("deltas", "p0", fmt.Sprintf("c%03d", i))
		if !ok || !bytes.Equal(v, val(29)) {
			t.Fatalf("row %d wrong after compaction", i)
		}
	}
}

func TestBackupOpensAsTieredStore(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, fastOptions())
	const n = 150
	for i := 0; i < n; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "some flushing", func() bool { return s.TierCounters().FlushedRows > 0 })
	backupDir := filepath.Join(t.TempDir(), "backup")
	if err := s.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	// The original keeps running and changing; the backup is frozen.
	s.Put("deltas", "p0", "c9999", val(1))
	defer s.Close()

	b := open(t, backupDir, fastOptions())
	defer b.Close()
	for i := 0; i < n; i++ {
		v, ok := b.Get("deltas", "p0", fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d missing from backup", i)
		}
	}
	if _, ok := b.Get("deltas", "p0", "c9999"); ok {
		t.Fatal("post-backup write leaked into the backup")
	}
}

func TestFactory(t *testing.T) {
	root := t.TempDir()
	f := Factory(root, fastOptions())
	for node := 0; node < 3; node++ {
		be, err := f(node)
		if err != nil {
			t.Fatal(err)
		}
		be.Put("t", "p", "c", []byte{byte(node)})
		if err := be.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(root, fmt.Sprintf("node-%03d", node), "wal")); err != nil {
			t.Fatalf("node %d wal dir: %v", node, err)
		}
	}
}

func TestSecondOpenOfLiveDirRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, fastOptions())
	if _, err := Open(dir, fastOptions()); err == nil {
		t.Fatal("second handle on a live tiered directory must be rejected")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with the handle: reopening after Close works.
	r := open(t, dir, fastOptions())
	r.Close()
}

// waitWarm blocks until the store's open-time warm-up finished.
func waitWarm(t *testing.T, s *Store) {
	t.Helper()
	waitFor(t, "warm-up to finish", func() bool { return s.TierCounters().Warming == 0 })
}

// coldSeed builds a store whose rows all live in cold segments (tiny
// hot budget keeps the drain latch engaged; small WAL segments retire
// behind the flusher), closes it, and returns the directory and row
// count. The reopened store starts with an empty hot tier — the
// restart scenario warm-up exists for.
func coldSeed(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	opts := Options{
		HotBytes:        1,
		CompactRate:     -1,
		FlushInterval:   time.Millisecond,
		WALSegmentBytes: 1 << 10,
		DisableWarm:     true,
	}
	s := open(t, dir, opts)
	for i := 0; i < n; i++ {
		s.Put("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "full drain to cold", func() bool { return s.TierCounters().HotBytes == 0 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWarmUpRepopulatesNewestRows(t *testing.T) {
	const n = 300
	dir := coldSeed(t, n)
	s := open(t, dir, Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	defer s.Close()
	waitWarm(t, s)
	tc := s.TierCounters()
	// The last few rows may come back via WAL replay (the active WAL
	// segment never retires) and are hot-owned, not warmed; everything
	// else must be warmed under an unbounded budget.
	if tc.WarmedRows < n-20 {
		t.Fatalf("warmed %d rows, want nearly all %d (budget is unbounded)", tc.WarmedRows, n)
	}
	if tc.WarmedBytes == 0 || tc.HotBytes == 0 {
		t.Fatalf("warm-up accounted nothing: %+v", tc)
	}
	// The recent-timespan probe: every row is answered from memory, zero
	// cold-tier reads.
	base := tc.ColdReads
	for i := 0; i < n; i++ {
		v, ok := s.Get("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d wrong after warm-up", i)
		}
	}
	if got := s.TierCounters().ColdReads - base; got != 0 {
		t.Fatalf("warmed store paid %d cold reads on the probe, want 0", got)
	}
}

func TestWarmUpHonorsBudgetNewestFirst(t *testing.T) {
	const n = 400
	dir := coldSeed(t, n)
	// Budget for roughly a quarter of the data: only the newest rows
	// come back.
	s := open(t, dir, Options{HotBytes: 8 << 10, CompactRate: -1, FlushInterval: time.Millisecond})
	defer s.Close()
	waitWarm(t, s)
	tc := s.TierCounters()
	if tc.WarmedRows == 0 || tc.WarmedRows >= n {
		t.Fatalf("warmed %d rows, want a strict budget-bounded subset of %d", tc.WarmedRows, n)
	}
	if tc.WarmedBytes > 8<<10 {
		t.Fatalf("warm-up overshot the budget: %d bytes", tc.WarmedBytes)
	}
	// The newest row is warm, the oldest is not.
	base := s.TierCounters().ColdReads
	if _, ok := s.Get("deltas", fmt.Sprintf("p%02d", (n-1)%4), fmt.Sprintf("c%04d", n-1)); !ok {
		t.Fatal("newest row missing")
	}
	if got := s.TierCounters().ColdReads - base; got != 0 {
		t.Fatalf("newest row not served warm (%d cold reads)", got)
	}
	if _, ok := s.Get("deltas", "p00", "c0000"); !ok {
		t.Fatal("oldest row missing")
	}
	if got := s.TierCounters().ColdReads - base; got != 1 {
		t.Fatalf("oldest row should be a cold read, counters moved by %d", got)
	}
}

func TestWarmUpDisabled(t *testing.T) {
	dir := coldSeed(t, 100)
	s := open(t, dir, Options{HotBytes: 1 << 30, DisableWarm: true})
	defer s.Close()
	time.Sleep(20 * time.Millisecond)
	tc := s.TierCounters()
	if tc.WarmedRows != 0 || tc.Warming != 0 {
		t.Fatalf("DisableWarm still warmed: %+v", tc)
	}
	if _, ok := s.Get("deltas", "p00", "c0000"); !ok {
		t.Fatal("row missing")
	}
	if s.TierCounters().ColdReads == 0 {
		t.Fatal("cold-start read should hit the cold tier")
	}
}

func TestKillMidWarmUpLeavesConsistentStore(t *testing.T) {
	const n = 400
	dir := coldSeed(t, n)
	s := open(t, dir, Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	s.Kill() // no waiting: the kill races the background warm-up

	r := open(t, dir, Options{HotBytes: 1 << 30, FlushInterval: time.Millisecond})
	defer r.Close()
	waitWarm(t, r)
	for i := 0; i < n; i++ {
		v, ok := r.Get("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d damaged by kill mid-warm-up", i)
		}
	}
}

func TestWarmedCopyInvalidatedByWriteAndDelete(t *testing.T) {
	dir := coldSeed(t, 50)
	s := open(t, dir, Options{HotBytes: 1 << 30, FlushInterval: time.Hour})
	defer s.Close()
	waitWarm(t, s)
	// Overwrite a warmed row: the hot tier takes over; the stale warmed
	// copy must not survive to shadow the cold tier later.
	s.Put("deltas", "p01", "c0001", []byte("fresh"))
	if v, _ := s.Get("deltas", "p01", "c0001"); !bytes.Equal(v, []byte("fresh")) {
		t.Fatalf("overwrite not visible: %q", v)
	}
	gaugeBefore := s.TierCounters().HotBytes
	if !s.Delete("deltas", "p02", "c0002") {
		t.Fatal("delete of warmed row reported absent")
	}
	if _, ok := s.Get("deltas", "p02", "c0002"); ok {
		t.Fatal("deleted warmed row still readable")
	}
	// Deleting a warmed-only row takes no hot-tier branch; the memory
	// gauge must still see the freed bytes (the flusher is parked, so
	// nothing else refreshes it).
	if got := s.TierCounters().HotBytes; got >= gaugeBefore {
		t.Fatalf("HotBytes gauge stuck at %d after deleting a warmed row (was %d)", got, gaugeBefore)
	}
	s.DropPartition("deltas", "p03")
	if rows := s.ScanPrefix("deltas", "p03", ""); len(rows) != 0 {
		t.Fatalf("dropped partition still has %d rows (warmed leftovers)", len(rows))
	}
}

func TestIdleSchedulerDrainsAfterQuietWindow(t *testing.T) {
	// Busy phase: sustained traffic below HotBytes must cause no flush
	// activity at all. Quiet phase: after the idle window the hot tier
	// drains fully (WAL retires), while every row stays memory-served.
	opts := Options{
		HotBytes:         256 << 10,
		CompactRate:      -1,
		FlushInterval:    time.Millisecond,
		WALSegmentBytes:  1 << 10,
		IdleCompactAfter: 50 * time.Millisecond,
	}
	s := open(t, t.TempDir(), opts)
	defer s.Close()
	const n = 500 // ~34 KB, far under budget
	deadline := time.Now().Add(150 * time.Millisecond)
	i := 0
	for time.Now().Before(deadline) {
		s.Put("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i%n), val(i%n))
		i++
		if i%50 == 0 {
			time.Sleep(time.Millisecond) // sustained, not bursty
		}
	}
	if tc := s.TierCounters(); tc.FlushedRows != 0 {
		t.Fatalf("flusher migrated %d rows during sustained under-budget traffic", tc.FlushedRows)
	}
	// Quiet: the idle window elapses, the drain runs at full speed.
	waitFor(t, "idle full drain", func() bool {
		tc := s.TierCounters()
		return tc.FlushedRows > 0 && tc.IdleCompactions > 0
	})
	waitFor(t, "WAL retirement after idle drain", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.wal.segs) == 1 && s.hot.StoredBytes() == 0
	})
	// Drained rows stay memory-resident: the probe pays no cold reads.
	base := s.TierCounters().ColdReads
	for j := 0; j < n; j++ {
		if _, ok := s.Get("deltas", fmt.Sprintf("p%02d", j%4), fmt.Sprintf("c%04d", j)); !ok {
			t.Fatalf("row %d lost in idle drain", j)
		}
	}
	if got := s.TierCounters().ColdReads - base; got != 0 {
		t.Fatalf("idle drain demoted %d rows to cold reads, want 0 (re-homed warm)", got)
	}
}

func TestBackupDoesNotBlockReads(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	const n = 400
	for i := 0; i < n; i++ {
		s.Put("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "some flushing", func() bool { return s.TierCounters().FlushedRows > 0 })

	// Park the backup after its snapshot, before the copy — the window
	// in which the old implementation held the store lock and every Get
	// on the node stalled.
	parked := make(chan struct{})
	release := make(chan struct{})
	backupCopyHook = func() {
		close(parked)
		<-release
	}
	defer func() { backupCopyHook = nil }()

	backupDir := filepath.Join(t.TempDir(), "backup")
	errc := make(chan error, 1)
	go func() { errc <- s.Backup(backupDir) }()
	<-parked

	// Reads (hot and cold) and puts complete while the backup is parked
	// mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if _, ok := s.Get("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i)); !ok {
				t.Errorf("row %d unreadable during backup", i)
				return
			}
		}
		s.Put("deltas", "p00", "during-backup", val(1))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reads blocked behind an in-flight backup")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// The backup is a consistent pre-snapshot state and opens cleanly.
	b := open(t, backupDir, fastOptions())
	defer b.Close()
	for i := 0; i < n; i++ {
		v, ok := b.Get("deltas", fmt.Sprintf("p%02d", i%4), fmt.Sprintf("c%04d", i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("row %d missing from backup", i)
		}
	}
	if _, ok := b.Get("deltas", "p00", "during-backup"); ok {
		t.Fatal("write issued during the backup leaked into the copy")
	}
}

func TestBackupIntoDirtyTargetLeavesItUnchanged(t *testing.T) {
	s := open(t, t.TempDir(), fastOptions())
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put("deltas", "p0", fmt.Sprintf("c%03d", i), val(i))
	}
	waitFor(t, "some flushing", func() bool { return s.TierCounters().FlushedRows > 0 })

	snapshot := func(root string) map[string]int64 {
		out := map[string]int64{}
		filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				out[path] = info.Size()
			}
			return nil
		})
		return out
	}
	check := func(t *testing.T, target string) {
		t.Helper()
		before := snapshot(target)
		if err := s.Backup(target); err == nil {
			t.Fatal("backup into a dirty target must fail")
		}
		after := snapshot(target)
		if len(before) != len(after) {
			t.Fatalf("failed backup changed the target: %d files -> %d", len(before), len(after))
		}
		for p, sz := range before {
			if after[p] != sz {
				t.Fatalf("failed backup modified %s", p)
			}
		}
	}

	t.Run("dirty wal", func(t *testing.T) {
		target := t.TempDir()
		if err := os.MkdirAll(filepath.Join(target, "wal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(target, "wal", walSegmentName(1)), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, target)
	})
	t.Run("dirty cold", func(t *testing.T) {
		target := t.TempDir()
		if err := os.MkdirAll(filepath.Join(target, "cold"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(target, "cold", "seg-00000001.log"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, target)
	})
}

func TestWarmEvictsBeforeHotFlushes(t *testing.T) {
	// Memory pressure on a warmed store is relieved by dropping warmed
	// copies (free), not by flushing hot rows (cold-tier I/O): as long
	// as the hot rows alone fit the budget, FlushedRows stays zero and
	// the newest warmth survives.
	const n = 400
	dir := coldSeed(t, n)
	s := open(t, dir, Options{HotBytes: 16 << 10, CompactRate: -1, FlushInterval: time.Millisecond})
	defer s.Close()
	waitWarm(t, s)
	warmedBytes := s.TierCounters().WarmedBytes
	if warmedBytes == 0 {
		t.Fatal("precondition: nothing warmed")
	}
	for i := 0; i < 100; i++ { // ~7 KB of new hot data: under budget on its own
		s.Put("deltas", "new", fmt.Sprintf("c%04d", i), val(i))
	}
	waitFor(t, "memory to settle back to the budget", func() bool {
		return s.TierCounters().HotBytes <= 16<<10
	})
	if tc := s.TierCounters(); tc.FlushedRows != 0 {
		t.Fatalf("hot rows flushed (%d) while warm eviction could cover the pressure", tc.FlushedRows)
	}
	// The newest warmed row survived the partial eviction.
	base := s.TierCounters().ColdReads
	if _, ok := s.Get("deltas", fmt.Sprintf("p%02d", (n-1)%4), fmt.Sprintf("c%04d", n-1)); !ok {
		t.Fatal("newest row missing")
	}
	if got := s.TierCounters().ColdReads - base; got != 0 {
		t.Fatalf("newest warmed row was evicted ahead of older ones (%d cold reads)", got)
	}
}
