package kvstore

// Node lifecycle, fault injection and the background rebalancer.
//
// AddNode/RemoveNode compute the ring diff and hand it to a background
// goroutine that streams only the partitions whose owner set changed,
// one partition at a time, under a byte-rate limit. While the migration
// runs the cluster routes reads through the pre-change ring until each
// partition's handoff commits and duplicates writes to the union of old
// and new owners, so no query ever observes a missing partition. The
// gate protocol against concurrent traffic is documented on the
// Cluster fields (readGate/writeGate in kvstore.go).

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/memtable"
	"hgs/internal/ring"
)

var (
	// ErrUnknownNode reports a topology or fault operation naming a node
	// that is not in the cluster.
	ErrUnknownNode = errors.New("kvstore: unknown node")
	// ErrDuplicateNode reports an AddNode for an id already present.
	ErrDuplicateNode = errors.New("kvstore: node already in cluster")
	// ErrRebalancing reports a topology change attempted while a
	// previous one is still streaming.
	ErrRebalancing = errors.New("kvstore: rebalance in progress")
	// ErrTooFewNodes reports a RemoveNode that would leave fewer nodes
	// than the replication factor.
	ErrTooFewNodes = errors.New("kvstore: removal would leave fewer nodes than replication factor")
)

// Fault is a per-node fault injection profile (InjectFault): each node
// visit errors with probability ErrRate (deterministically spread — a
// rate of 0.25 fails exactly every 4th visit) and is slowed by
// ExtraLatency whether or not it errors. Failed visits still charge a
// base operation of simulated service time: the request reached the
// machine.
type Fault struct {
	ErrRate      float64
	ExtraLatency time.Duration
}

// fires reports whether this visit should error, advancing the node's
// deterministic fault counter.
func (f *Fault) fires(n *storageNode) bool {
	if f.ErrRate <= 0 {
		return false
	}
	if f.ErrRate >= 1 {
		return true
	}
	k := n.faultN.Add(1)
	return int64(float64(k)*f.ErrRate) != int64(float64(k-1)*f.ErrRate)
}

// nodeAt returns the live handle for a node id, nil if absent.
func (c *Cluster) nodeAt(id int) *storageNode {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.nodes[id]
}

// FailNode marks a node down: every replica visit to it errors until
// ReviveNode. Reads fail over to the remaining replicas; writes queue
// hints. The node's engine is left untouched.
func (c *Cluster) FailNode(id int) error {
	node := c.nodeAt(id)
	if node == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	node.down.Store(true)
	return nil
}

// ReviveNode brings a failed node back: the mutations it missed (hinted
// handoff) are delivered through the current ring — to the node itself
// where it still owns the partition, and to whichever replicas own it
// now where a rebalance moved it away while the node was down. The node
// stays marked down (reads keep failing over) until its queue is empty,
// so no read can observe it live but behind its hints.
func (c *Cluster) ReviveNode(id int) error {
	node := c.nodeAt(id)
	if node == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	node.mu.Lock()
	closed := node.closed
	node.mu.Unlock()
	if closed {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	// Drain-deliver until empty: a writer that saw the node down may
	// append one more hint while we deliver the previous batch. The final
	// empty check and the down flip happen under hintMu together, and
	// writers append through queueHint, which re-checks down under the
	// same lock — so every hint either lands in a batch this loop
	// delivers, or the writer observes down==false and applies directly.
	for {
		node.hintMu.Lock()
		if len(node.hints) == 0 {
			node.drainedHints()
			node.down.Store(false)
			node.hintMu.Unlock()
			return nil
		}
		hs := node.hints
		node.hints = nil
		node.hintMu.Unlock()
		for _, h := range hs {
			c.deliverHint(node, h)
		}
	}
}

// deliverHint re-routes one queued mutation through the current ring.
// The partition's owner set may have changed while the hint waited
// (node down, persistent fault, decommission), so applying it to the
// origin node alone could strand the write on a non-owner — invisible
// to reads and anti-entropy — or lose it to a later queued drop. Puts
// and deletes go to every current owner, stamp-guarded so an old hint
// never rolls back a newer row; a queued drop stays local, because it
// describes the origin's own relinquished copy while the current
// owners' copies are live.
//
// The origin is applied directly even while still marked down (this IS
// its replay path); other down owners get the hint queued for their own
// revival. Only one node's service lock is held at a time, so
// deliveries from concurrent revives cannot deadlock.
func (c *Cluster) deliverHint(origin *storageNode, h hint) {
	if h.op == hintDrop {
		origin.mu.Lock()
		if !origin.closed {
			origin.be.DropPartition(h.table, h.pkey)
		}
		origin.mu.Unlock()
		return
	}
	var rt route
	c.writeRoute(h.table, h.pkey, &rt)
	for _, node := range rt.nodes {
		if node != origin && node.down.Load() && node.queueHint(h) {
			continue
		}
		node.mu.Lock()
		if !node.closed {
			replayHint(node.be, h)
		}
		node.mu.Unlock()
	}
}

// InjectFault installs (or, with nil, clears) a fault profile on a
// node. Unlike FailNode the node stays a valid read target — a faulting
// visit errors and the read fails over, which is how tests exercise the
// failover path without taking a replica fully out. Clearing the
// profile replays any hints writes force-queued against a persistently
// erroring node (writeReplica), so the node does not keep serving reads
// while silently missing mutations: unlike FailNode hints, these would
// otherwise wait for a ReviveNode that never comes.
func (c *Cluster) InjectFault(id int, f *Fault) error {
	node := c.nodeAt(id)
	if node == nil {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	node.fault.Store(f)
	if f == nil || f.ErrRate <= 0 {
		c.replayHints(node)
	}
	return nil
}

// replayHints delivers a live node's queued hints through the current
// ring (deliverHint). A down node keeps its hints for ReviveNode, which
// delivers them and flips the node back up atomically.
func (c *Cluster) replayHints(node *storageNode) {
	node.mu.Lock()
	closed := node.closed
	node.mu.Unlock()
	if closed || node.down.Load() {
		return
	}
	for {
		node.hintMu.Lock()
		hs := node.hints
		node.hints = nil
		if len(hs) == 0 {
			node.drainedHints()
			node.hintMu.Unlock()
			return
		}
		node.hintMu.Unlock()
		for _, h := range hs {
			c.deliverHint(node, h)
		}
	}
}

// NodeDown reports whether the node is currently marked failed.
func (c *Cluster) NodeDown(id int) bool {
	node := c.nodeAt(id)
	return node != nil && node.down.Load()
}

// AddNode creates a new storage node (engine from the configured
// factory) and starts the background rebalance that streams the
// partitions the ring now assigns to it. It returns once the migration
// is underway; WaitRebalance blocks until it finishes.
func (c *Cluster) AddNode(id int) error {
	if id < 0 {
		return fmt.Errorf("kvstore: add node: id must be >= 0, got %d", id)
	}
	factory := c.cfg.Backend
	if factory == nil {
		factory = memtable.Factory()
	}
	// The rebActive check and beginRebalanceLocked's set must be one
	// critical section under topoMu: two concurrent topology calls must
	// not both pass the check and arm two overlapping migrations.
	c.topoMu.Lock()
	if c.rebActive.Load() {
		c.topoMu.Unlock()
		return ErrRebalancing
	}
	if _, ok := c.nodes[id]; ok {
		c.topoMu.Unlock()
		return fmt.Errorf("%w: %d", ErrDuplicateNode, id)
	}
	be, err := factory(id)
	if err != nil {
		c.topoMu.Unlock()
		return fmt.Errorf("kvstore: add node %d: %w", id, err)
	}
	node := newStorageNode(id, be)
	if c.cfg.HintDir != "" {
		if err := c.attachHintLog(node, false); err != nil {
			be.Close()
			c.topoMu.Unlock()
			return fmt.Errorf("kvstore: add node %d: %w", id, err)
		}
	}
	c.nodes[id] = node
	c.beginRebalanceLocked(c.ring.With(id))
	c.topoMu.Unlock()
	go c.rebalance(-1)
	return nil
}

// RemoveNode starts decommissioning a node: the background rebalance
// streams every partition it owns to the post-removal owners, then
// closes and drops the node. Refuses to shrink below the replication
// factor. Reads keep being served by the retiring node until each
// partition's handoff commits.
func (c *Cluster) RemoveNode(id int) error {
	// Check-and-arm under topoMu, as in AddNode: see the comment there.
	c.topoMu.Lock()
	if c.rebActive.Load() {
		c.topoMu.Unlock()
		return ErrRebalancing
	}
	if _, ok := c.nodes[id]; !ok {
		c.topoMu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(c.nodes)-1 < c.cfg.Replication {
		c.topoMu.Unlock()
		return fmt.Errorf("%w: have %d nodes, replication %d", ErrTooFewNodes, len(c.nodes), c.cfg.Replication)
	}
	c.beginRebalanceLocked(c.ring.Without(id))
	c.topoMu.Unlock()
	go c.rebalance(id)
	return nil
}

// beginRebalanceLocked swaps in the post-change ring and arms the
// migration state. Caller holds topoMu and has already checked
// rebActive; reads route through oldRing until partitions land in
// moved, writes go to the union of both rings' owners.
func (c *Cluster) beginRebalanceLocked(next *ring.Ring) {
	c.rebActive.Store(true)
	c.oldRing = c.ring
	c.ring = next
	c.moved = make(map[string]bool)
	c.rebDone = make(chan struct{})
	c.rebErr = nil
	c.rebalances.Add(1)
}

// Rebalancing reports whether a background topology migration is
// running (including its final drop phase).
func (c *Cluster) Rebalancing() bool { return c.rebActive.Load() }

// WaitRebalance blocks until the in-flight topology migration (if any)
// finishes and returns its error. The error persists until the next
// topology change, so a later caller still observes a failed commit.
func (c *Cluster) WaitRebalance() error {
	c.topoMu.RLock()
	done := c.rebDone
	c.topoMu.RUnlock()
	if done != nil {
		<-done
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.rebErr
}

// pendingMove is one partition whose owner set changes with the ring.
type pendingMove struct {
	table, pkey string
	adds, drops []int // new-only and old-only owner ids
}

// rebalance is the background migration: plan the moved partitions,
// stream each one under the write gate and the rate limit, commit the
// new topology, then drop the relinquished copies and (for a removal)
// retire the node. retiring is the node being removed, -1 for an add.
func (c *Cluster) rebalance(retiring int) {
	defer func() {
		c.topoMu.RLock()
		done := c.rebDone
		c.topoMu.RUnlock()
		c.rebActive.Store(false)
		close(done)
	}()

	moves := c.planMoves()

	// Stream one partition at a time. The write gate is held only
	// across a single partition's copy, so foreground writes stall at
	// most one partition's worth of streaming.
	var debt time.Duration
	rate := c.cfg.RebalanceRate
	for i := range moves {
		n := c.movePartition(&moves[i])
		if rate > 0 && n > 0 {
			debt += time.Duration(n) * time.Second / time.Duration(rate)
			if debt > 2*time.Millisecond {
				time.Sleep(debt)
				debt = 0
			}
		}
	}

	// Commit point: persist the post-change node set before any old
	// copy is dropped. On failure, keep the old copies (the persisted
	// topology still describes them) and surface the error.
	var commitErr error
	if c.cfg.OnTopologyCommit != nil {
		c.topoMu.RLock()
		ids := c.ring.Nodes()
		c.topoMu.RUnlock()
		if err := c.cfg.OnTopologyCommit(ids); err != nil {
			commitErr = fmt.Errorf("kvstore: commit topology: %w", err)
		}
	}

	// Swap to single-ring routing, then flush every read that resolved
	// its route under the old ring before touching any old copy.
	c.topoMu.Lock()
	c.oldRing = nil
	c.moved = nil
	c.rebErr = commitErr
	c.topoMu.Unlock()
	c.readGate.Lock()
	c.readGate.Unlock() //nolint:staticcheck // empty critical section is the barrier

	if commitErr == nil {
		// Writers that routed under the dual-ring union must finish
		// before their old-owner copies are dropped out from under the
		// accounting; after this barrier all traffic is new-ring only.
		c.writeGate.Lock()
		c.writeGate.Unlock() //nolint:staticcheck // barrier, as above
		for i := range moves {
			c.dropOldCopies(&moves[i])
		}
	}

	// On a failed commit the retiring node is kept too, still serving its
	// copies: the persisted topology lists it, and closing it would make
	// the live cluster diverge from what a restart recovers. A later
	// RemoveNode (after the operator fixes the commit path) retires it.
	if retiring >= 0 && commitErr == nil {
		node := c.nodeAt(retiring)
		if node != nil {
			// Writes the retiring node refused through a persistent fault
			// (or missed while transiently down) live only in its hint
			// queue. Deliver them through the committed ring before the
			// node closes — dropping the queue with the node would lose
			// acknowledged-elsewhere-as-hinted writes for good.
			for {
				node.hintMu.Lock()
				hs := node.hints
				node.hints = nil
				node.hintMu.Unlock()
				if len(hs) == 0 {
					break
				}
				for _, h := range hs {
					c.deliverHint(node, h)
				}
			}
			node.mu.Lock()
			if !node.closed {
				node.closed = true
				if err := node.be.Close(); err != nil {
					c.topoMu.Lock()
					c.rebErr = fmt.Errorf("kvstore: retire node %d: %w", retiring, err)
					c.topoMu.Unlock()
				}
			}
			node.mu.Unlock()
			node.hintMu.Lock()
			if node.hlog != nil {
				node.hlog.removeFile()
				node.hlog = nil
			}
			node.hintMu.Unlock()
			c.topoMu.Lock()
			delete(c.nodes, retiring)
			c.topoMu.Unlock()
		}
	}
}

// planMoves enumerates every partition in the cluster (engines
// implementing backend.TableLister), computes its owner sets under the
// old and new rings, and returns the partitions whose set changed.
// Partitions whose owners are unchanged are committed as moved
// immediately so reads route through the new ring without waiting
// behind the streaming queue.
func (c *Cluster) planMoves() []pendingMove {
	c.topoMu.RLock()
	oldR, newR := c.oldRing, c.ring
	nodes := make([]*storageNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.topoMu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })

	seen := make(map[string]bool)
	var moves []pendingMove
	var settled []string
	var oldBuf, newBuf [routeStack]int
	for _, node := range nodes {
		if node.tl == nil || !oldR.Has(node.id) {
			continue
		}
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			continue
		}
		type tp struct{ table, pkey string }
		var parts []tp
		for _, table := range node.tl.Tables() {
			for _, pk := range node.be.PartitionKeys(table) {
				parts = append(parts, tp{table, pk})
			}
		}
		node.mu.Unlock()
		for _, p := range parts {
			k := partKey(p.table, p.pkey)
			if seen[k] {
				continue
			}
			seen[k] = true
			h := hashKey(p.table, p.pkey)
			oldIDs := oldR.Lookup(h, oldBuf[:0])
			newIDs := newR.Lookup(h, newBuf[:0])
			adds := diffIDs(newIDs, oldIDs)
			drops := diffIDs(oldIDs, newIDs)
			if len(adds) == 0 && len(drops) == 0 {
				settled = append(settled, k)
				continue
			}
			moves = append(moves, pendingMove{table: p.table, pkey: p.pkey, adds: adds, drops: drops})
		}
	}
	if len(settled) > 0 {
		c.topoMu.Lock()
		if c.moved != nil {
			for _, k := range settled {
				c.moved[k] = true
			}
		}
		c.topoMu.Unlock()
	}
	return moves
}

// diffIDs returns the ids in a that are not in b (both are tiny).
func diffIDs(a, b []int) []int {
	var out []int
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}

// movePartition copies one partition to its new owners and commits its
// handoff, all under the write gate so no foreground write can
// interleave with the copy (a write landing between "read rows" and
// "put rows" on the destination would be overwritten by the stale
// copy). Returns the byte volume streamed, for the rate limiter.
func (c *Cluster) movePartition(m *pendingMove) int64 {
	c.writeGate.Lock()
	defer c.writeGate.Unlock()

	// Merge the partition across every live old owner, newest stamp per
	// ckey: replicas can disagree mid-churn (a straggler write applied or
	// hinted on one copy only), and streaming a single possibly-stale
	// copy while dropOldCopies discards the rest would lose the newer
	// row. With every old owner down (or removed while failed) the rows
	// are unrecoverable; the handoff still commits so routing converges.
	c.topoMu.RLock()
	oldR := c.oldRing
	c.topoMu.RUnlock()
	if oldR == nil {
		return 0 // cluster shutting down mid-plan
	}
	var srcBuf [routeStack]int
	var rows []backend.Row
	got := false
	rowAt := make(map[string]int)
	for _, id := range oldR.Lookup(hashKey(m.table, m.pkey), srcBuf[:0]) {
		node := c.nodeAt(id)
		if node == nil || node.down.Load() {
			continue
		}
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			continue
		}
		nrows := node.be.ScanPrefix(m.table, m.pkey, "")
		node.mu.Unlock()
		got = true
		for _, r := range nrows {
			if j, ok := rowAt[r.CKey]; ok {
				if newerThan(r.Value, rows[j].Value) {
					rows[j] = r
				}
				continue
			}
			rowAt[r.CKey] = len(rows)
			rows = append(rows, r)
		}
	}

	var bytes int64
	if got && len(rows) > 0 {
		for _, r := range rows {
			bytes += int64(len(r.CKey) + len(r.Value))
		}
		for _, id := range m.adds {
			node := c.nodeAt(id)
			if node == nil {
				continue
			}
			// A down new owner gets each row hinted so revive replays
			// the handoff; queueHint re-checks down under hintMu, so a
			// concurrent revive cannot strand a hint — rows it refuses
			// are applied directly to the now-live engine. Application is
			// stamp-guarded (replayHint): a hint delivery landing on the
			// destination between our source read and this write must not
			// be rolled back by the older streamed copy.
			for _, r := range rows {
				h := hint{op: hintPut, table: m.table, pkey: m.pkey, ckey: r.CKey, value: r.Value}
				if node.down.Load() && node.queueHint(h) {
					c.hintedWrites.Add(1)
					continue
				}
				node.mu.Lock()
				if !node.closed {
					replayHint(node.be, h)
				}
				node.mu.Unlock()
			}
		}
	}

	c.topoMu.Lock()
	if c.moved != nil {
		c.moved[partKey(m.table, m.pkey)] = true
	}
	c.topoMu.Unlock()

	c.rebalancedParts.Add(1)
	c.rebalancedRows.Add(int64(len(rows)))
	c.rebalancedBytes.Add(bytes)
	return bytes
}

// dropOldCopies removes the partition from the owners the new ring
// relinquished. Runs after the post-commit read/write barriers, so no
// in-flight operation can still be routed at these copies. A down old
// owner gets the drop hinted, keeping its revive-replay consistent
// with the new placement.
func (c *Cluster) dropOldCopies(m *pendingMove) {
	for _, id := range m.drops {
		node := c.nodeAt(id)
		if node == nil {
			continue
		}
		if node.down.Load() && node.queueHint(hint{op: hintDrop, table: m.table, pkey: m.pkey}) {
			continue
		}
		node.mu.Lock()
		if !node.closed {
			node.be.DropPartition(m.table, m.pkey)
		}
		node.mu.Unlock()
	}
}

// NodeInfo describes one storage node in a topology dump.
type NodeInfo struct {
	ID           int     `json:"id"`
	VirtualNodes int     `json:"virtual_nodes"`
	KeyShare     float64 `json:"key_share"` // fraction of the hash space this node is primary for
	Down         bool    `json:"down"`
	StoredBytes  int64   `json:"stored_bytes"`
	PendingHints int     `json:"pending_hints"`
}

// TopologyInfo is a point-in-time description of cluster placement:
// per-node ring weight and health plus the partitions currently
// under-replicated (at least one replica down or hinted).
type TopologyInfo struct {
	Replication     int        `json:"replication"`
	VirtualNodes    int        `json:"virtual_nodes"`
	Rebalancing     bool       `json:"rebalancing"`
	Nodes           []NodeInfo `json:"nodes"`
	Partitions      int        `json:"partitions"`
	UnderReplicated int        `json:"under_replicated"`
}

// Topology inspects the cluster: ring shares and health per node, and a
// sweep over every partition counting the ones with a down replica.
// The sweep enumerates engines (TableLister), so it is an inspection
// surface, not a hot path.
func (c *Cluster) Topology() TopologyInfo {
	c.topoMu.RLock()
	r := c.ring
	nodes := make([]*storageNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.topoMu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })

	shares := r.Shares()
	info := TopologyInfo{
		Replication:  c.cfg.Replication,
		VirtualNodes: r.VirtualNodes(),
		Rebalancing:  c.Rebalancing(),
	}
	for _, node := range nodes {
		node.hintMu.Lock()
		hints := len(node.hints)
		node.hintMu.Unlock()
		node.mu.Lock()
		var stored int64
		if !node.closed {
			stored = node.be.StoredBytes()
		}
		node.mu.Unlock()
		info.Nodes = append(info.Nodes, NodeInfo{
			ID:           node.id,
			VirtualNodes: r.PointsOf(node.id),
			KeyShare:     shares[node.id],
			Down:         node.down.Load(),
			StoredBytes:  stored,
			PendingHints: hints,
		})
	}

	// Partition sweep: owners under the active ring, counted
	// under-replicated when any owner is down.
	seen := make(map[string]bool)
	var buf [routeStack]int
	for _, node := range nodes {
		if node.tl == nil {
			continue
		}
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			continue
		}
		type tp struct{ table, pkey string }
		var parts []tp
		for _, table := range node.tl.Tables() {
			for _, pk := range node.be.PartitionKeys(table) {
				parts = append(parts, tp{table, pk})
			}
		}
		node.mu.Unlock()
		for _, p := range parts {
			k := partKey(p.table, p.pkey)
			if seen[k] {
				continue
			}
			seen[k] = true
			info.Partitions++
			for _, id := range r.Lookup(hashKey(p.table, p.pkey), buf[:0]) {
				owner := c.nodeAt(id)
				if owner == nil || owner.down.Load() {
					info.UnderReplicated++
					break
				}
			}
		}
	}
	return info
}
