package core

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/tiered"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// openTieredCluster builds a cluster over tiered engines rooted at dir
// and hands back the engines so the test can crash them.
func openTieredCluster(t *testing.T, dir string, opts tiered.Options) (*kvstore.Cluster, []*tiered.Store) {
	t.Helper()
	var engines []*tiered.Store
	inner := tiered.Factory(dir, opts)
	cluster, err := kvstore.Open(kvstore.Config{
		Machines: 3,
		Backend: func(node int) (backend.Backend, error) {
			be, err := inner(node)
			if err == nil {
				engines = append(engines, be.(*tiered.Store))
			}
			return be, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, engines
}

// TestTieredCrashRecoveryViaAttach kills every node of a tiered store
// mid-compaction — tiny hot budget plus a heavily throttled flush rate
// guarantee migration is still in flight — then reopens the directory
// through core.Attach and requires every query to match the oracle: no
// acknowledged event may be lost, whichever tier (WAL, hot residue,
// cold segments) it had reached.
func TestTieredCrashRecoveryViaAttach(t *testing.T) {
	dir := t.TempDir()
	events := genHistory(31, 600, 60)
	cfg := smallConfig()

	opts := tiered.Options{
		HotBytes:      4 << 10,  // force constant migration
		CompactRate:   32 << 10, // ...but let it trickle
		FlushInterval: time.Millisecond,
	}
	cluster, engines := openTieredCluster(t, dir, opts)
	if _, err := Build(cluster, cfg, events); err != nil {
		t.Fatal(err)
	}
	if len(engines) != 3 {
		t.Fatalf("expected 3 tiered engines, got %d", len(engines))
	}
	// Crash every node where it stands; no flush, no drain, the
	// background flusher abandoned mid-chunk.
	for _, e := range engines {
		e.Kill()
	}

	reopened, _ := openTieredCluster(t, dir, opts)
	tgi, attached, err := Attach(reopened, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !attached {
		t.Fatal("Attach found no index after crash recovery")
	}
	for _, tt := range []temporal.Time{10, 1500, 3000, 4500, 6000} {
		g, err := tgi.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatalf("snapshot@%d after crash: %v", tt, err)
		}
		if !g.Equal(oracle(events, tt)) {
			t.Fatalf("snapshot@%d diverged from oracle after crash recovery", tt)
		}
	}
	lo, hi, err := tgi.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if lo != events[0].Time || hi != events[len(events)-1].Time {
		t.Fatalf("time range [%d,%d] after crash, want [%d,%d]", lo, hi, events[0].Time, events[len(events)-1].Time)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredTornTailRecoveryViaAttach crashes a tiered store and then
// corrupts the logs the way a real crash does — a half-written record
// at the WAL tail and garbage at the cold log tail — and requires the
// reopen to truncate both torn tails while serving every acknowledged
// event.
func TestTieredTornTailRecoveryViaAttach(t *testing.T) {
	dir := t.TempDir()
	events := genHistory(32, 400, 50)
	cfg := smallConfig()

	opts := tiered.Options{
		HotBytes:      8 << 10,
		CompactRate:   -1,
		FlushInterval: time.Millisecond,
	}
	cluster, engines := openTieredCluster(t, dir, opts)
	if _, err := Build(cluster, cfg, events); err != nil {
		t.Fatal(err)
	}
	// Flush so everything written so far is acknowledged-durable, then
	// crash and tear the log tails.
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range engines {
		e.Kill()
	}
	tornWAL, tornCold := 0, 0
	for node := 0; node < 3; node++ {
		nodeDir := filepath.Join(dir, []string{"node-000", "node-001", "node-002"}[node])
		tornWAL += tearLastLog(t, filepath.Join(nodeDir, "wal"), "wal-")
		tornCold += tearLastLog(t, filepath.Join(nodeDir, "cold"), "seg-")
	}
	if tornWAL == 0 && tornCold == 0 {
		t.Fatal("test wrote no torn tails")
	}

	reopened, _ := openTieredCluster(t, dir, opts)
	defer reopened.Close()
	tgi, attached, err := Attach(reopened, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !attached {
		t.Fatal("Attach found no index after torn-tail recovery")
	}
	hi := events[len(events)-1].Time
	for _, tt := range []temporal.Time{1000, 2000, hi} {
		g, err := tgi.GetSnapshot(tt, nil)
		if err != nil {
			t.Fatalf("snapshot@%d after torn-tail recovery: %v", tt, err)
		}
		if !g.Equal(oracle(events, tt)) {
			t.Fatalf("snapshot@%d diverged after torn-tail recovery", tt)
		}
	}
}

// tearLastLog appends a plausible-but-torn record (valid header, short
// payload) to the newest log file under dir whose name starts with
// prefix, returning how many files it tore.
func tearLastLog(t *testing.T, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var last string
	for _, e := range entries {
		name := e.Name()
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			if last == "" || name > last {
				last = name
			}
		}
	}
	if last == "" {
		return 0
	}
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A record claiming 64 payload bytes, with only 5 present.
	payload := []byte("torn!")
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], 64)
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(append(header[:], payload...)); err != nil {
		t.Fatal(err)
	}
	return 1
}
