package sparklite

import (
	"sort"
	"sync/atomic"
	"testing"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, ints(100), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got := r.Collect()
	if len(got) != 100 {
		t.Fatalf("collected %d", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing element %d", i)
		}
	}
}

func TestMapFilterCount(t *testing.T) {
	ctx := NewContext(3)
	r := Parallelize(ctx, ints(50), 5)
	sq := Map(r, func(x int) int { return x * x })
	even := sq.Filter(func(x int) bool { return x%2 == 0 })
	if got := even.Count(); got != 25 {
		t.Fatalf("Count = %d, want 25", got)
	}
}

func TestFlatMap(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, []int{1, 2, 3}, 2)
	dup := FlatMap(r, func(x int) []int { return []int{x, x} })
	if got := dup.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestMapPartitions(t *testing.T) {
	ctx := NewContext(2)
	r := Parallelize(ctx, ints(10), 3)
	sums := MapPartitions(r, func(xs []int) []int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return []int{s}
	})
	total := 0
	for _, s := range sums.Collect() {
		total += s
	}
	if total != 45 {
		t.Fatalf("sum = %d, want 45", total)
	}
}

func TestReduce(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, ints(101), 8)
	sum, ok := Reduce(r, func(a, b int) int { return a + b })
	if !ok || sum != 5050 {
		t.Fatalf("Reduce = %d,%v want 5050,true", sum, ok)
	}
	empty := Parallelize[int](ctx, nil, 4)
	if _, ok := Reduce(empty, func(a, b int) int { return a + b }); ok {
		t.Fatal("empty reduce should report !ok")
	}
}

func TestForeachVisitsAll(t *testing.T) {
	ctx := NewContext(4)
	r := Parallelize(ctx, ints(200), 9)
	var n atomic.Int64
	r.Foreach(func(int) { n.Add(1) })
	if n.Load() != 200 {
		t.Fatalf("visited %d", n.Load())
	}
}

func TestCacheComputesOnce(t *testing.T) {
	ctx := NewContext(2)
	var calls atomic.Int64
	r := Parallelize(ctx, ints(10), 2)
	mapped := Map(r, func(x int) int {
		calls.Add(1)
		return x
	}).Cache()
	mapped.Count()
	mapped.Count()
	mapped.Collect()
	if calls.Load() != 10 {
		t.Fatalf("map called %d times, want 10 (cached)", calls.Load())
	}
}

func TestFromPartitionsPreservesLayout(t *testing.T) {
	ctx := NewContext(2)
	r := FromPartitions(ctx, [][]string{{"a", "b"}, {"c"}, nil})
	if r.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	got := r.Collect()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("collect = %v", got)
	}
}

func TestEmptyRDD(t *testing.T) {
	ctx := NewContext(2)
	r := FromPartitions[int](ctx, nil)
	if r.Count() != 0 {
		t.Fatal("empty RDD should count 0")
	}
}

func TestContextDefaults(t *testing.T) {
	if NewContext(0).Workers() < 1 {
		t.Fatal("default workers must be positive")
	}
	if NewContext(5).Workers() != 5 {
		t.Fatal("explicit workers not honored")
	}
}

func TestChainedLaziness(t *testing.T) {
	// Transformations alone must not evaluate anything.
	ctx := NewContext(2)
	var calls atomic.Int64
	r := Parallelize(ctx, ints(10), 2)
	m := Map(r, func(x int) int { calls.Add(1); return x })
	_ = m.Filter(func(x int) bool { return true })
	if calls.Load() != 0 {
		t.Fatal("transformation should be lazy")
	}
}
