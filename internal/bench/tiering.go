package bench

import (
	"fmt"
	"os"
	"time"

	"hgs/internal/backend/tiered"
	"hgs/internal/core"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// TieringBench sweeps the tiered backend's hot-tier budget over the
// same index and recent-heavy query workload, reporting the per-tier
// read split (from kvstore.Metrics) and the simulated service time —
// the memory-vs-disk DeltaGraph placement trade-off: the bigger the hot
// tier, the more of the newest timespan's deltas are served without a
// disk-tier read, and with an all-hot tier the workload must touch the
// cold tier zero times. Each sweep point builds a fresh tiered store in
// a temporary directory, lets background flushing settle to the budget,
// then runs the probes with the latency model (including its per-row
// cold-read surcharge) enabled.
func TieringBench(sc Scale) *Result {
	start := time.Now()
	events := Dataset1(sc)
	res := &Result{
		ID:     "tiering",
		Title:  "Tiered backend: hot-tier budget vs per-tier reads (m=4, recent-heavy probes)",
		XLabel: "hot-tier budget per node (KB; last point = unbounded)",
		YLabel: "hot-hit ratio",
	}
	res.TableHeader = []string{"hot budget", "hot reads", "cold reads", "hit ratio", "flushed KB", "sim wait", "elapsed"}

	hitSeries := Series{Name: "hot-hit ratio"}
	waitSeries := Series{Name: "simulated wait (s)"}
	probes := probeTimes(events, 6)
	recent := probes[len(probes)-3:] // the paper's hot assumption: query the newest times
	allHot := int64(1) << 40

	for _, hotBytes := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, allHot} {
		m, wait, sec := tieringPass(events, hotBytes, recent)
		total := m.TierHotReads + m.TierColdReads
		ratio := 0.0
		if total > 0 {
			ratio = float64(m.TierHotReads) / float64(total)
		}
		label := fmt.Sprintf("%dKB", hotBytes>>10)
		if hotBytes == allHot {
			label = "unbounded"
		}
		res.TableRows = append(res.TableRows, []string{
			label,
			fmt.Sprintf("%d", m.TierHotReads),
			fmt.Sprintf("%d", m.TierColdReads),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", m.FlushedBytes/1024),
			wait.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3fs", sec),
		})
		hitSeries.Points = append(hitSeries.Points, Point{X: float64(hotBytes >> 10), Y: ratio})
		waitSeries.Points = append(waitSeries.Points, Point{X: float64(hotBytes >> 10), Y: wait.Seconds()})
		if hotBytes == allHot {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"unbounded hot tier: %d reads served with %d disk-tier reads (hot hits avoid the cold tier entirely)",
				m.TierHotReads, m.TierColdReads))
		}
	}
	res.Series = append(res.Series, hitSeries, waitSeries)
	res.Notes = append(res.Notes,
		"per-tier counters come from Store.Stats/kvstore.Metrics (TierHotReads/TierColdReads); cold rows pay the latency model's ColdRead surcharge")
	res.Elapsed = time.Since(start)
	return res
}

// tieringPass builds a tiered store with the given hot budget, waits
// for background flushing to settle, runs the recent-heavy probe
// workload under the latency model, and returns the workload's metrics
// delta, simulated wait, and wall time.
func tieringPass(events []graph.Event, hotBytes int64, recent []temporal.Time) (kvstore.Metrics, time.Duration, float64) {
	dir, err := os.MkdirTemp("", "hgs-tiering-")
	if err != nil {
		panic(fmt.Sprintf("bench: tiering tempdir: %v", err))
	}
	defer os.RemoveAll(dir)
	cluster, err := kvstore.Open(kvstore.Config{
		Machines: 4,
		Backend: tiered.Factory(dir, tiered.Options{
			HotBytes:      hotBytes,
			CompactRate:   32 << 20, // generous but finite: settling stays visible
			FlushInterval: time.Millisecond,
		}),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: tiering cluster: %v", err))
	}
	defer cluster.Close()
	cfg := benchTGIConfig(len(events))
	tgi, err := core.Build(cluster, cfg, events)
	if err != nil {
		panic(fmt.Sprintf("bench: tiering build: %v", err))
	}

	// Let the flusher drain the build's write burst down to the budget.
	deadline := time.Now().Add(30 * time.Second)
	for cluster.Metrics().TierHotBytes > hotBytes*4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Warm the query-manager metadata (not the variable under study),
	// pick probe nodes, then measure.
	full, err := tgi.GetSnapshot(recent[len(recent)-1], nil)
	if err != nil {
		panic(fmt.Sprintf("bench: tiering probe: %v", err))
	}
	ids := full.NodeIDs()
	nodes := make([]graph.NodeID, 0, 24)
	for i := 0; i < 24 && i < len(ids); i++ {
		nodes = append(nodes, ids[len(ids)*i/24])
	}

	cluster.ResetMetrics()
	cluster.SetLatency(kvstore.DefaultLatency())
	sec := timeIt(func() {
		for _, tt := range recent {
			if _, err := tgi.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
				panic(fmt.Sprintf("bench: tiering snapshot: %v", err))
			}
		}
		for _, id := range nodes {
			if _, err := tgi.GetNodeAt(id, recent[len(recent)-1], nil); err != nil {
				panic(fmt.Sprintf("bench: tiering node fetch: %v", err))
			}
		}
	})
	cluster.SetLatency(kvstore.LatencyModel{})
	m := cluster.Metrics()
	return m, m.SimWait, sec
}
