package delta

import (
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// EventList is a chronologically sorted set of events with a time scope
// (paper Example 2). A partitioned eventlist (Example 3) is an EventList
// whose events have been restricted to a node set; Restrict produces one.
type EventList struct {
	Scope  temporal.Interval
	Events []graph.Event
}

// NewEventList wraps events, which must already be chronological, with
// their covering scope.
func NewEventList(scope temporal.Interval, events []graph.Event) *EventList {
	return &EventList{Scope: scope, Events: events}
}

// Len returns the number of events.
func (el *EventList) Len() int { return len(el.Events) }

// FilterByTime returns a new eventlist holding only events in iv,
// with the narrowed scope.
func (el *EventList) FilterByTime(iv temporal.Interval) *EventList {
	scope, _ := el.Scope.Intersect(iv)
	return &EventList{Scope: scope, Events: graph.FilterEventsByTime(el.Events, iv)}
}

// FilterByNode returns the partitioned eventlist for a single node.
func (el *EventList) FilterByNode(id graph.NodeID) *EventList {
	return &EventList{Scope: el.Scope, Events: graph.FilterEventsByNode(el.Events, id)}
}

// Restrict returns the partitioned eventlist containing events that touch
// any node satisfying keep. Edge events are kept if either endpoint
// qualifies (edges are replicated with both endpoints).
func (el *EventList) Restrict(keep func(graph.NodeID) bool) *EventList {
	var out []graph.Event
	for _, e := range el.Events {
		if keep(e.Node) || (e.Kind.IsEdge() && keep(e.Other)) {
			out = append(out, e)
		}
	}
	return &EventList{Scope: el.Scope, Events: out}
}

// ApplyTo replays the eventlist onto a mutable graph in order.
func (el *EventList) ApplyTo(g *graph.Graph) error {
	return g.ApplyAll(el.Events)
}

// ApplyUpTo replays only events with Time <= t (a snapshot at t includes
// all events at t).
func (el *EventList) ApplyUpTo(g *graph.Graph, t temporal.Time) error {
	for _, e := range el.Events {
		if e.Time > t {
			break
		}
		if err := g.Apply(e); err != nil {
			return err
		}
	}
	return nil
}

// ChangePoints returns the distinct event times touching node id within
// the list, in order; with id < 0 it returns all distinct event times.
func (el *EventList) ChangePoints(id graph.NodeID) []temporal.Time {
	var out []temporal.Time
	for _, e := range el.Events {
		if id >= 0 && !e.Touches(id) {
			continue
		}
		if n := len(out); n == 0 || out[n-1] != e.Time {
			out = append(out, e.Time)
		}
	}
	return out
}
