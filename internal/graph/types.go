// Package graph provides the static graph model underlying the Historical
// Graph Store: node states with attributes and embedded adjacency (the
// node-centric model of the paper, §3.1, where edges are attributes of
// nodes), atomic change events, an in-memory mutable Graph, and a library
// of network metrics used by the analytics framework.
package graph

import (
	"fmt"
	"sort"

	"hgs/internal/temporal"
)

// NodeID uniquely identifies a vertex over the entire history.
type NodeID int64

// Attrs is a set of key-value attribute pairs attached to a node or edge.
// A nil Attrs behaves as an empty map for lookups.
type Attrs map[string]string

// Clone returns a deep copy; cloning nil yields nil.
func (a Attrs) Clone() Attrs {
	if a == nil {
		return nil
	}
	out := make(Attrs, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Equal reports whether two attribute maps hold exactly the same pairs.
// nil and empty compare equal.
func (a Attrs) Equal(b Attrs) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// EdgeKey identifies an edge from the perspective of one endpoint: the
// other endpoint and whether the edge points outward from the owner.
// A directed edge u->v appears as {Other: v, Out: true} on u and
// {Other: u, Out: false} on v; the paper replicates edge information with
// both endpoints (§4.2) and so do we.
type EdgeKey struct {
	Other NodeID
	Out   bool
}

// EdgeState is the state of one edge: its attributes. The endpoints and
// direction live in the EdgeKey.
type EdgeState struct {
	Attrs Attrs
}

// Clone returns a deep copy of the edge state.
func (e *EdgeState) Clone() *EdgeState {
	if e == nil {
		return nil
	}
	return &EdgeState{Attrs: e.Attrs.Clone()}
}

// Equal reports deep equality of edge states.
func (e *EdgeState) Equal(o *EdgeState) bool {
	if e == nil || o == nil {
		return e == o
	}
	return e.Attrs.Equal(o.Attrs)
}

// NodeState is the paper's "static node" (Definition 1): the state of a
// vertex at one point in time — its id, attribute map, and edge list.
type NodeState struct {
	ID    NodeID
	Attrs Attrs
	Edges map[EdgeKey]*EdgeState
}

// NewNodeState returns an empty state for the given node.
func NewNodeState(id NodeID) *NodeState {
	return &NodeState{ID: id}
}

// Clone returns a deep copy of the node state.
func (n *NodeState) Clone() *NodeState {
	if n == nil {
		return nil
	}
	out := &NodeState{ID: n.ID, Attrs: n.Attrs.Clone()}
	if n.Edges != nil {
		out.Edges = make(map[EdgeKey]*EdgeState, len(n.Edges))
		for k, v := range n.Edges {
			out.Edges[k] = v.Clone()
		}
	}
	return out
}

// Equal reports deep equality of two node states. It is the component
// equality used by delta intersection (paper Definition 5).
func (n *NodeState) Equal(o *NodeState) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.ID != o.ID || !n.Attrs.Equal(o.Attrs) || len(n.Edges) != len(o.Edges) {
		return false
	}
	for k, v := range n.Edges {
		ov, ok := o.Edges[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Attr returns the value of a node attribute and whether it is set.
func (n *NodeState) Attr(key string) (string, bool) {
	v, ok := n.Attrs[key]
	return v, ok
}

// Degree returns the number of distinct neighbors (undirected view;
// self-loops do not make a node its own neighbor).
func (n *NodeState) Degree() int {
	if len(n.Edges) == 0 {
		return 0
	}
	seen := make(map[NodeID]struct{}, len(n.Edges))
	for k := range n.Edges {
		if k.Other != n.ID {
			seen[k.Other] = struct{}{}
		}
	}
	return len(seen)
}

// OutDegree returns the number of outgoing edges.
func (n *NodeState) OutDegree() int {
	d := 0
	for k := range n.Edges {
		if k.Out {
			d++
		}
	}
	return d
}

// InDegree returns the number of incoming edges.
func (n *NodeState) InDegree() int { return len(n.Edges) - n.OutDegree() }

// Neighbors returns the distinct neighbor ids in ascending order
// (undirected view: both in- and out-edges; self-loops excluded).
func (n *NodeState) Neighbors() []NodeID {
	if len(n.Edges) == 0 {
		return nil
	}
	seen := make(map[NodeID]struct{}, len(n.Edges))
	for k := range n.Edges {
		if k.Other != n.ID {
			seen[k.Other] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OutNeighbors returns the targets of outgoing edges in ascending order.
func (n *NodeState) OutNeighbors() []NodeID {
	var out []NodeID
	for k := range n.Edges {
		if k.Out {
			out = append(out, k.Other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edge returns the edge state for the given key, or nil.
func (n *NodeState) Edge(k EdgeKey) *EdgeState { return n.Edges[k] }

// HasEdgeTo reports whether an edge exists between this node and other in
// either direction.
func (n *NodeState) HasEdgeTo(other NodeID) bool {
	if n.Edges == nil {
		return false
	}
	if _, ok := n.Edges[EdgeKey{Other: other, Out: true}]; ok {
		return true
	}
	_, ok := n.Edges[EdgeKey{Other: other, Out: false}]
	return ok
}

func (n *NodeState) String() string {
	return fmt.Sprintf("node(%d, %d attrs, %d edges)", n.ID, len(n.Attrs), len(n.Edges))
}

// Version is one state of a node together with the interval during which
// that state was valid (paper Definition 6 decomposes a temporal node into
// such versions).
type Version struct {
	State *NodeState
	Valid temporal.Interval
}
