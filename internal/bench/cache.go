package bench

import (
	"fmt"
	"time"

	"hgs/internal/core"
	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// cacheWorkload is the shared cache-experiment query mix: snapshot
// retrievals (delta groups + boundary eventlists), node fetches at a
// populated time (micro-partition point reads), and sparse-history node
// probes at the earliest indexed time — where most path delta rows for
// the probed micro-partitions do not exist, so the absent-row handling
// of the cache is on the measured path.
func cacheWorkload(t *core.TGI, probes []temporal.Time, nodes []graph.NodeID, early temporal.Time) {
	mid := probes[len(probes)/2]
	for _, tt := range probes {
		if _, err := t.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
			panic(fmt.Sprintf("bench: cache snapshot: %v", err))
		}
	}
	for _, id := range nodes {
		if _, err := t.GetNodeAt(id, mid, nil); err != nil {
			panic(fmt.Sprintf("bench: cache node fetch: %v", err))
		}
		if _, err := t.GetNodeAt(id, early, nil); err != nil {
			panic(fmt.Sprintf("bench: cache sparse probe: %v", err))
		}
	}
}

// cacheFixture builds the cache-experiment index and returns the probe
// times and probed node ids.
func cacheFixture(sc Scale) (ix *builtIndex, probes []temporal.Time, nodes []graph.NodeID, early temporal.Time) {
	events := Dataset1(sc)
	ix = buildIndex("fig11", events, 4, 1, nil)
	probes = probeTimes(events, 3)
	early = events[0].Time
	mid := probes[len(probes)/2]
	full, err := ix.TGI.GetSnapshot(mid, nil)
	if err != nil {
		panic(fmt.Sprintf("bench: cache probe snapshot: %v", err))
	}
	ids := full.NodeIDs()
	nodes = make([]graph.NodeID, 0, 64)
	for i := 0; i < 64 && i < len(ids); i++ {
		nodes = append(nodes, ids[len(ids)*i/64])
	}
	return ix, probes, nodes, early
}

// legacyCache reproduces the PR 2 cache for comparison passes: flat LRU
// admission (a scan can evict the whole hot set) and no negative
// caching (absent rows are re-read every probe).
func legacyCache() *fetch.Cache {
	return fetch.NewCacheWith(fetch.CacheOptions{
		MaxBytes:   core.DefaultCacheBytes,
		PlainLRU:   true,
		NoNegative: true,
	})
}

// CacheBench — the cache v2 experiment: the same snapshot + node-fetch +
// sparse-probe workload runs cold and warm over a v2 cache handle
// (segmented-LRU admission, negative caching), warm over a legacy v1
// cache handle (flat LRU, no negative entries — the PR 2 behavior), and
// over a cache-disabled handle, reporting logical KV operations,
// machine round-trips, simulated service time and wall time for each
// pass. The warm v2 pass must answer part of the workload from negative
// entries (nonzero negative-hit ratio) and issue strictly fewer KV
// reads than the v1 warm pass — checked by TestCacheV2NegativeCaching;
// TestCacheBenchSpeedup keeps the original ≥2× cold/warm bar.
func CacheBench(sc Scale) *Result {
	start := time.Now()
	ix, probes, nodes, early := cacheFixture(sc)
	res := &Result{
		ID:    "cache",
		Title: "Decoded-delta cache v2: cold vs warm vs legacy-v1 vs disabled (m=4, c=4)",
	}

	// run meters one pass and appends its structured PassMetrics (KV
	// delta, cache delta with hit/negative ratios, latency quantiles
	// from the per-op histograms) for -json and the perf ratchet.
	run := func(label string, t *core.TGI) (kvstore.Metrics, float64) {
		ix.Cluster.ResetMetrics()
		cacheBefore := t.CacheStats()
		obsBefore := ix.Obs.Snapshot()
		sec := timeIt(func() { cacheWorkload(t, probes, nodes, early) })
		m := ix.Cluster.Metrics()
		cacheAfter := t.CacheStats()
		pm := PassMetrics{
			Label:          label,
			KVReads:        m.Reads,
			RoundTrips:     m.RoundTrips,
			BytesRead:      m.BytesRead,
			SimWaitSeconds: m.SimWait.Seconds(),
			CacheHits:      cacheAfter.Hits - cacheBefore.Hits,
			CacheMisses:    cacheAfter.Misses - cacheBefore.Misses,
			NegativeHits:   cacheAfter.NegativeHits - cacheBefore.NegativeHits,
		}
		if lookups := pm.CacheHits + pm.CacheMisses + pm.NegativeHits; lookups > 0 {
			pm.CacheHitRatio = float64(pm.CacheHits) / float64(lookups)
			pm.NegativeHitRatio = float64(pm.NegativeHits) / float64(lookups)
		}
		if h, ok := ix.Obs.Snapshot().Diff(obsBefore).FamilyHist("hgs_op_duration_seconds"); ok {
			pm.Ops = h.Count
			pm.P50Seconds = h.Quantile(0.50)
			pm.P90Seconds = h.Quantile(0.90)
			pm.P99Seconds = h.Quantile(0.99)
		}
		res.Passes = append(res.Passes, pm)
		return m, sec
	}

	// Fresh handles over the built cluster: v2 cache (the default), the
	// legacy v1 cache, and caching disabled, all with cold metadata.
	cfg := ix.TGI.Config()
	cfg.CacheBytes = 0 // default budget (bench indexes are built cache-off)
	v2TGI := core.New(ix.Cluster, cfg)
	cfgV1 := cfg
	cfgV1.Cache = legacyCache()
	v1TGI := core.New(ix.Cluster, cfgV1)
	cfgOff := cfg
	cfgOff.CacheBytes = -1
	uncachedTGI := core.New(ix.Cluster, cfgOff)

	ix.Cluster.SetLatency(kvstore.DefaultLatency())
	defer ix.Cluster.SetLatency(kvstore.LatencyModel{})
	coldM, coldSec := run("cold (v2)", v2TGI)
	coldStats := v2TGI.CacheStats()
	warmM, warmSec := run("warm (v2)", v2TGI)
	warmStats := v2TGI.CacheStats()
	run("cold (v1 legacy)", v1TGI) // cold v1 pass warms the legacy cache
	v1M, v1Sec := run("warm (v1 legacy)", v1TGI)
	offM, offSec := run("cache off", uncachedTGI)

	res.TableHeader = []string{"pass", "kv reads", "round-trips", "read KB", "sim wait", "elapsed"}
	row := func(name string, m kvstore.Metrics, sec float64) []string {
		return []string{
			name,
			fmt.Sprintf("%d", m.Reads),
			fmt.Sprintf("%d", m.RoundTrips),
			fmt.Sprintf("%d", m.BytesRead/1024),
			m.SimWait.Round(time.Millisecond).String(),
			fmt.Sprintf("%.3fs", sec),
		}
	}
	res.TableRows = append(res.TableRows,
		row("cold (v2)", coldM, coldSec),
		row("warm (v2)", warmM, warmSec),
		row("warm (v1 legacy)", v1M, v1Sec),
		row("cache off", offM, offSec),
	)
	if warmM.Reads > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("warm v2 pass issues %.1fx fewer kv reads than cold", float64(coldM.Reads)/float64(warmM.Reads)))
	}
	// Eviction quality and negative caching, warm pass only (cold-pass
	// counters subtracted). The ratio is over cache *answers* (positive
	// + negative hits); misses were not answered by the cache.
	negHits := warmStats.NegativeHits - coldStats.NegativeHits
	answers := negHits + (warmStats.Hits - coldStats.Hits)
	if answers > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf("warm v2 negative-hit ratio: %.2f (%d of %d cache answers; each one an absent-row KV read not issued)",
			float64(negHits)/float64(answers), negHits, answers))
	}
	if v1M.Reads > warmM.Reads {
		res.Notes = append(res.Notes, fmt.Sprintf("warm v2 issues %d fewer kv reads than the v1 (PR 2) cache on the same workload", v1M.Reads-warmM.Reads))
	}
	res.Notes = append(res.Notes, fmt.Sprintf("warm v2 evictions since cold: %d; protected segment: %d KB of %d KB budget",
		warmStats.Evictions-coldStats.Evictions, warmStats.ProtectedBytes/1024, warmStats.MaxBytes/1024))
	res.Notes = append(res.Notes, "v2 "+warmStats.String())
	res.Elapsed = time.Since(start)
	return res
}

// CachePasses runs the snapshot-only cache workload without the latency
// model and returns the cold and warm pass metrics — the testable core
// of the original cache experiment (used by TestCacheBenchSpeedup).
func CachePasses(sc Scale) (cold, warm kvstore.Metrics) {
	events := Dataset1(sc)
	ix := buildIndex("fig11", events, 4, 1, nil)
	probes := probeTimes(events, 3)
	cfg := ix.TGI.Config()
	cfg.CacheBytes = 0 // default budget (bench indexes are built cache-off)
	t := core.New(ix.Cluster, cfg)
	run := func() kvstore.Metrics {
		ix.Cluster.ResetMetrics()
		for _, tt := range probes {
			if _, err := t.GetSnapshot(tt, &core.FetchOptions{Clients: 4}); err != nil {
				panic(err)
			}
		}
		return ix.Cluster.Metrics()
	}
	cold = run()
	warm = run()
	return cold, warm
}

// CacheV2Passes runs the full cache-v2 workload without the latency
// model and returns the warm-pass metrics of the v2 and legacy-v1
// caches plus the v2 warm-pass cache-counter deltas — the testable core
// of the v2 experiment (used by TestCacheV2NegativeCaching).
func CacheV2Passes(sc Scale) (warmV2, warmV1 kvstore.Metrics, warmDelta fetch.CacheStats) {
	ix, probes, nodes, early := cacheFixture(sc)
	cfg := ix.TGI.Config()
	cfg.CacheBytes = 0
	v2TGI := core.New(ix.Cluster, cfg)
	cfgV1 := cfg
	cfgV1.Cache = legacyCache()
	v1TGI := core.New(ix.Cluster, cfgV1)

	run := func(t *core.TGI) kvstore.Metrics {
		ix.Cluster.ResetMetrics()
		cacheWorkload(t, probes, nodes, early)
		return ix.Cluster.Metrics()
	}
	run(v2TGI) // cold
	cold := v2TGI.CacheStats()
	warmV2 = run(v2TGI)
	warm := v2TGI.CacheStats()
	run(v1TGI) // cold
	warmV1 = run(v1TGI)
	warmDelta = fetch.CacheStats{
		Hits:         warm.Hits - cold.Hits,
		Misses:       warm.Misses - cold.Misses,
		NegativeHits: warm.NegativeHits - cold.NegativeHits,
		Evictions:    warm.Evictions - cold.Evictions,
	}
	return warmV2, warmV1, warmDelta
}
