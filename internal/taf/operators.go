package taf

import (
	"sort"

	"hgs/internal/graph"
	"hgs/internal/sparklite"
	"hgs/internal/temporal"
)

// This file implements the temporal operator library of paper §5.1:
// NodeCompute (map), NodeComputeTemporal (per-version map),
// NodeComputeDelta (incremental map), Compare, Evolution. Selection,
// Timeslice, Graph and the aggregations live on SoN/SoTS and Series.

// NodeCompute applies f to every temporal node and returns the results
// (paper operator 4, the map over an SoN).
func NodeCompute[V any](s *SoN, f func(*NodeT) V) []V {
	return sparklite.Map(s.rdd, f).Collect()
}

// NodeComputeKV is NodeCompute keyed by node id.
func NodeComputeKV[V any](s *SoN, f func(*NodeT) V) map[graph.NodeID]V {
	type kv struct {
		id graph.NodeID
		v  V
	}
	rows := sparklite.Map(s.rdd, func(nt *NodeT) kv { return kv{nt.ID(), f(nt)} }).Collect()
	out := make(map[graph.NodeID]V, len(rows))
	for _, r := range rows {
		out[r.id] = r.v
	}
	return out
}

// SubgraphCompute applies f to every temporal subgraph (the SoTS map).
func SubgraphCompute[V any](s *SoTS, f func(*SubgraphT) V) []V {
	return sparklite.Map(s.rdd, f).Collect()
}

// SubgraphComputeKV is SubgraphCompute keyed by root id.
func SubgraphComputeKV[V any](s *SoTS, f func(*SubgraphT) V) map[graph.NodeID]V {
	type kv struct {
		id graph.NodeID
		v  V
	}
	rows := sparklite.Map(s.rdd, func(st *SubgraphT) kv { return kv{st.Root(), f(st)} }).Collect()
	out := make(map[graph.NodeID]V, len(rows))
	for _, r := range rows {
		out[r.id] = r.v
	}
	return out
}

// TimepointsFunc selects the evaluation timepoints for a temporal node;
// nil means all of its change points (the paper's default).
type TimepointsFunc func(*NodeT) []temporal.Time

// NodeComputeTemporal evaluates f on every state (version) of every node
// (paper operator 5): fresh evaluation at each selected timepoint.
func NodeComputeTemporal[V any](s *SoN, f func(*graph.NodeState) V, at TimepointsFunc) map[graph.NodeID][]Timed[V] {
	type row struct {
		id  graph.NodeID
		out []Timed[V]
	}
	rows := sparklite.Map(s.rdd, func(nt *NodeT) row {
		times := nt.ChangePoints()
		if at != nil {
			times = at(nt)
		}
		out := make([]Timed[V], 0, len(times))
		for _, tt := range times {
			out = append(out, Timed[V]{Time: tt, Value: f(nt.StateAt(tt))})
		}
		return row{nt.ID(), out}
	}).Collect()
	res := make(map[graph.NodeID][]Timed[V], len(rows))
	for _, r := range rows {
		res[r.id] = r.out
	}
	return res
}

// SubgraphTimepointsFunc selects evaluation timepoints for a temporal
// subgraph; nil means all of its change points.
type SubgraphTimepointsFunc func(*SubgraphT) []temporal.Time

// SubgraphComputeTemporal evaluates f afresh on every selected version of
// every subgraph — the O(N·T) baseline that NodeComputeDelta improves on
// (paper §5.2, Figure 8a).
func SubgraphComputeTemporal[V any](s *SoTS, f func(*graph.Graph) V, at SubgraphTimepointsFunc) map[graph.NodeID][]Timed[V] {
	type row struct {
		id  graph.NodeID
		out []Timed[V]
	}
	rows := sparklite.Map(s.rdd, func(st *SubgraphT) row {
		times := st.ChangePoints()
		if at != nil {
			times = at(st)
		}
		out := make([]Timed[V], 0, len(times))
		for _, tt := range times {
			out = append(out, Timed[V]{Time: tt, Value: f(st.StateAt(tt))})
		}
		return row{st.Root(), out}
	}).Collect()
	res := make(map[graph.NodeID][]Timed[V], len(rows))
	for _, r := range rows {
		res[r.id] = r.out
	}
	return res
}

// DeltaFunc updates a computed quantity for one event (paper operator 6):
// it receives the subgraph state BEFORE the event, the auxiliary
// structure, the current value, and the event, and returns the updated
// value and auxiliary structure.
type DeltaFunc[V any] func(before *graph.Graph, aux any, val V, e graph.Event) (V, any)

// SubgraphComputeDelta evaluates a quantity incrementally over every
// subgraph's versions (paper operator 6, Figure 8b): f computes the
// quantity (and optional auxiliary index) on the initial state; fd folds
// each event into the value in O(1)-ish work instead of recomputing. One
// value is emitted per change point, matching SubgraphComputeTemporal's
// default output for direct comparison (Figure 17).
func SubgraphComputeDelta[V any](s *SoTS, f func(*graph.Graph) (V, any), fd DeltaFunc[V]) map[graph.NodeID][]Timed[V] {
	type row struct {
		id  graph.NodeID
		out []Timed[V]
	}
	rows := sparklite.Map(s.rdd, func(st *SubgraphT) row {
		running := st.StateAt(st.Span().Start) // initial members-induced state
		val, aux := f(running)
		// Only changes visible in the member-induced subgraph update the
		// running state: edges must have both endpoints inside, node
		// changes must hit members. This keeps `running` identical to
		// StateAt(t) at every step, so fd's before-state is exact.
		members := make(map[graph.NodeID]struct{}, len(st.Members()))
		for _, m := range st.Members() {
			members[m] = struct{}{}
		}
		visible := func(e graph.Event) bool {
			if _, ok := members[e.Node]; !ok {
				return false
			}
			if e.Kind.IsEdge() {
				_, ok := members[e.Other]
				return ok
			}
			return true
		}
		events := st.Events()
		var out []Timed[V]
		for i := 0; i < len(events); {
			tt := events[i].Time
			for i < len(events) && events[i].Time == tt {
				if visible(events[i]) {
					val, aux = fd(running, aux, val, events[i])
					running.Apply(events[i])
				}
				i++
			}
			out = append(out, Timed[V]{Time: tt, Value: val})
		}
		return row{st.Root(), out}
	}).Collect()
	res := make(map[graph.NodeID][]Timed[V], len(rows))
	for _, r := range rows {
		res[r.id] = r.out
	}
	return res
}

// CompareRow is one (node-id, difference) result of Compare.
type CompareRow struct {
	ID   graph.NodeID
	A, B float64
	Diff float64 // A - B
}

// Compare evaluates f over the components of two SoNs and returns the
// per-node differences (paper operator 7). Nodes appearing on one side
// only contribute with the other side's value as zero.
func Compare(a, b *SoN, f func(*NodeT) float64) []CompareRow {
	av := NodeComputeKV(a, f)
	bv := NodeComputeKV(b, f)
	ids := make(map[graph.NodeID]struct{}, len(av)+len(bv))
	for id := range av {
		ids[id] = struct{}{}
	}
	for id := range bv {
		ids[id] = struct{}{}
	}
	out := make([]CompareRow, 0, len(ids))
	for id := range ids {
		row := CompareRow{ID: id, A: av[id], B: bv[id]}
		row.Diff = row.A - row.B
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CompareAt is the paper's single-SoN variation: evaluate f on the
// timeslices of one SoN at two timepoints and diff per node.
func CompareAt(s *SoN, f func(*graph.NodeState) float64, t1, t2 temporal.Time) []CompareRow {
	type pair struct {
		id   graph.NodeID
		a, b float64
	}
	rows := sparklite.Map(s.rdd, func(nt *NodeT) pair {
		var a, b float64
		if ns := nt.StateAt(t1); ns != nil {
			a = f(ns)
		}
		if ns := nt.StateAt(t2); ns != nil {
			b = f(ns)
		}
		return pair{nt.ID(), a, b}
	}).Collect()
	out := make([]CompareRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, CompareRow{ID: r.id, A: r.a, B: r.b, Diff: r.a - r.b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Evolution samples a graph-level quantity over the SoN's span (paper
// operator 8). With points == nil the quantity is sampled at n evenly
// spaced timepoints.
func Evolution(s *SoN, quantity func(*graph.Graph) float64, n int, points []temporal.Time) Series {
	if points == nil {
		points = EvenTimepoints(s.span, n)
	}
	out := make(Series, 0, len(points))
	for _, tt := range points {
		out = append(out, Timed[float64]{Time: tt, Value: quantity(s.Graph(tt))})
	}
	return out.Sort()
}

// AliveCountSeries samples how many SoN members exist at each timepoint
// (the membership-count comparison of paper Figure 7b).
func AliveCountSeries(s *SoN, points []temporal.Time) Series {
	if points == nil {
		points = EvenTimepoints(s.span, 10)
	}
	nts := s.rdd.Collect()
	out := make(Series, 0, len(points))
	for _, tt := range points {
		n := 0
		for _, nt := range nts {
			if nt.StateAt(tt) != nil {
				n++
			}
		}
		out = append(out, Timed[float64]{Time: tt, Value: float64(n)})
	}
	return out.Sort()
}
