// Package backend defines the pluggable storage engine behind each node
// of the kvstore cluster. The cluster keeps the distribution concerns —
// placement by partition key, replication, the latency cost model and
// per-node service serialization — while a Backend owns the actual rows
// of one node: table-scoped partitions of rows sorted by clustering key.
//
// Two engines ship with the repository:
//
//   - memtable: the original in-process sorted-slice store (no
//     durability; what the paper's evaluation simulates), and
//   - disklog: a durable append-only WAL/segment engine with
//     CRC-checked records, log-replay recovery and compaction.
//
// Future adapters (a real Cassandra client, tiered storage, ...) plug in
// behind the same interface.
package backend

// Row is one clustered row inside a partition.
type Row struct {
	CKey  string
	Value []byte
}

// Backend is the storage engine of a single cluster node. The cluster
// serializes access per node (one operation at a time under the node's
// service lock), so implementations do not need to be internally
// synchronized for cluster use — though disklog is, to keep standalone
// use safe.
//
// Ownership: Put may retain the value slice (the cluster hands each
// backend an immutable copy); Get and ScanPrefix must return values the
// caller may freely modify.
//
// Error model: the read/write methods mirror the cluster's surface and
// return no errors. Durable engines record I/O failures internally and
// surface them at the next Flush or Close; a read hitting a failed
// device reports not-found. Using an engine after Close is a
// programming error and may panic.
type Backend interface {
	// Get returns the value at (table, pkey, ckey).
	Get(table, pkey, ckey string) ([]byte, bool)
	// Put stores value under (table, pkey, ckey), overwriting any
	// existing row. Write errors of durable engines surface at the next
	// Flush or Close (WAL semantics).
	Put(table, pkey, ckey string, value []byte)
	// ScanPrefix returns the partition's rows whose clustering key
	// starts with prefix, in clustering order.
	ScanPrefix(table, pkey, prefix string) []Row
	// Delete removes a row, reporting whether it existed.
	Delete(table, pkey, ckey string) bool
	// DropPartition removes an entire partition.
	DropPartition(table, pkey string)
	// PartitionKeys returns the sorted partition keys of a table.
	PartitionKeys(table string) []string
	// StoredBytes returns the logical live bytes held by this node
	// (sum over rows of clustering-key and value lengths).
	StoredBytes() int64
	// Flush makes all writes accepted so far durable (fsync for disk
	// engines; no-op for memory) and reports any pending write error.
	Flush() error
	// Close flushes and releases the engine. The backend must not be
	// used afterwards.
	Close() error
}

// KeyRead names one row of a batched point read.
type KeyRead struct {
	Table, PKey, CKey string
}

// BatchReader is an optional fast path for serving many point reads in
// one engine call. The cluster probes for it when executing a batched
// read plan: an engine that implements it resolves the whole batch under
// a single service charge (and can amortize its own per-call overhead —
// lock acquisition, partition lookup); engines that do not are served by
// a Get loop. result[i] is nil exactly when reqs[i] is absent (a present
// row with an empty value yields a non-nil empty slice), and every
// returned value is the caller's to keep.
type BatchReader interface {
	MultiGet(reqs []KeyRead) [][]byte
}

// MultiGet serves a batch of point reads through be's BatchReader fast
// path when available, falling back to one Get per key.
func MultiGet(be Backend, reqs []KeyRead) [][]byte {
	if br, ok := be.(BatchReader); ok {
		return br.MultiGet(reqs)
	}
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		if v, ok := be.Get(r.Table, r.PKey, r.CKey); ok {
			if v == nil {
				v = []byte{}
			}
			out[i] = v
		}
	}
	return out
}

// Factory creates the backend for cluster node idx. Factories are how a
// cluster is parameterized over engines: the node index lets durable
// engines derive a per-node directory.
type Factory func(node int) (Backend, error)
