package codec

import (
	"math/rand"
	"testing"
)

// TestDecodeRandomBytesNeverPanics feeds random byte soup into every
// decoder: they must fail gracefully (error) or succeed, never panic or
// over-allocate (the count guard caps preallocation at blob size).
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Codec{}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(200)
		blob := make([]byte, n)
		rng.Read(blob)
		if n > 0 && rng.Intn(2) == 0 {
			blob[0] = flagPlain // exercise the body parsers, not just framing
		}
		c.DecodeDelta(blob)
		c.DecodeEvents(blob)
		c.DecodeNodeState(blob)
	}
}

// TestDecodeMutatedBlobs corrupts valid blobs one byte at a time; decode
// must either error or produce some result without panicking.
func TestDecodeMutatedBlobs(t *testing.T) {
	c := Codec{}
	d := randDelta(5, 60)
	blob, err := c.EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(blob); pos += 3 {
		for _, b := range []byte{0x00, 0xFF, blob[pos] ^ 0x40} {
			mut := append([]byte(nil), blob...)
			mut[pos] = b
			c.DecodeDelta(mut)
		}
	}
	evBlob, err := c.EncodeEvents(randEvents(6, 80))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(evBlob); pos += 3 {
		mut := append([]byte(nil), evBlob...)
		mut[pos] ^= 0xA5
		c.DecodeEvents(mut)
	}
}

// TestHugeCountRejected verifies the count guard: a blob declaring an
// enormous element count but holding few bytes must error out fast.
func TestHugeCountRejected(t *testing.T) {
	// flagPlain + uvarint(2^40) and nothing else.
	blob := []byte{flagPlain, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	c := Codec{}
	if _, err := c.DecodeDelta(blob); err == nil {
		t.Fatal("huge count must be rejected")
	}
	if _, err := c.DecodeEvents(blob); err == nil {
		t.Fatal("huge count must be rejected")
	}
}
