// Command hgs-inspect builds a Historical Graph Store over a synthetic
// dataset and reports index statistics and a few probe queries — a quick
// way to see what the TGI stores and how retrieval behaves.
//
// Usage:
//
//	hgs-inspect -dataset wiki -nodes 10000
//	hgs-inspect -dataset friendster -nodes 8000 -locality
//
// With -data the store runs on a durable disk backend: the first run
// builds and persists the index, subsequent runs reattach to it and
// answer the probe queries without rebuilding:
//
//	hgs-inspect -dataset wiki -nodes 10000 -data /tmp/hgs-wiki
//	hgs-inspect -data /tmp/hgs-wiki   # instant: reuses the index
//
// -engine selects the storage engine behind -data (disk, or tiered for
// the hot/cold engine with background compaction; the engine is
// persisted, reattaching adopts it), and -backup copies the quiesced
// store into a fresh directory that opens like the original:
//
//	hgs-inspect -dataset wiki -data /tmp/hgs-wiki -engine tiered
//	hgs-inspect -data /tmp/hgs-wiki -backup /tmp/hgs-wiki.bak
//	hgs-inspect -data /tmp/hgs-wiki.bak   # the backup is a store
//
// Reopening a tiered store warms its hot tier from the newest cold
// segments by default (-warm off restores cold starts); -idle-after
// tunes when background maintenance may run at full speed.
//
// -trace records a plan trace for every probe query and prints each
// retrieval's planned key set and its per-table cache-hit /
// negative-hit / KV-read breakdown, with exact round-trip and
// simulated-wait attribution:
//
//	hgs-inspect -dataset wiki -nodes 10000 -trace
//
// -topology appends the placement state — per-node virtual-node
// count, key share, stored bytes, pending hinted writes, and any
// under-replicated partitions — for the freshly built or reattached
// store:
//
//	hgs-inspect -data /tmp/hgs-wiki -topology
//
// -metrics replaces the human report with the store's complete metric
// state in the Prometheus text exposition format — the same bytes the
// embedded debug server serves on /metrics — after running the usual
// probe queries so the per-op latency histograms are populated. Build
// progress goes to stderr, so stdout is a clean scrape:
//
//	hgs-inspect -data /tmp/hgs-wiki -metrics > metrics.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"hgs"
	"hgs/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "wiki", "dataset: wiki | friendster | dblp")
	nodes := flag.Int("nodes", 10_000, "approximate node count")
	machines := flag.Int("machines", 4, "storage machines (m)")
	replication := flag.Int("replication", 1, "replication factor (r)")
	locality := flag.Bool("locality", false, "use locality micro-partitioning")
	replicate := flag.Bool("replicate-1hop", false, "store 1-hop replication aux deltas")
	compress := flag.Bool("compress", false, "gzip-compress stored blobs")
	dataDir := flag.String("data", "", "durable data directory (disk backend); reattaches when it already holds an index")
	engine := flag.String("engine", "", "storage engine for -data: disk | tiered (default: disk, or whatever the directory was created with)")
	hotBytes := flag.Int64("hot-bytes", 0, "tiered engine: per-node hot-tier budget in bytes (default 32 MiB)")
	compactRate := flag.Int64("compact-rate", 0, "tiered engine: background flush limit in bytes/sec (default 8 MiB/s; negative = unlimited)")
	warm := flag.String("warm", "", "tiered engine: hot-tier warm-up on reopen: on | off (default on)")
	idleAfter := flag.Duration("idle-after", 0, "tiered engine: quiet window before full-speed maintenance (default 1s; negative disables)")
	backup := flag.String("backup", "", "after inspecting, copy the quiesced store into this fresh directory")
	trace := flag.Bool("trace", false, "record per-query plan traces and print each probe's plan/cache/KV breakdown")
	metrics := flag.Bool("metrics", false, "dump the store's metrics in Prometheus text format on stdout instead of the human report")
	topology := flag.Bool("topology", false, "print the placement topology: per-node vnode count, key share, stored bytes, under-replicated partitions")
	flag.Parse()

	// With -metrics the human report is silenced and stdout carries only
	// the exposition; progress lines move to stderr.
	report := io.Writer(os.Stdout)
	banner := io.Writer(os.Stdout)
	if *metrics {
		report = io.Discard
		banner = os.Stderr
	}

	// With a populated -data directory the shape and index parameters
	// come from disk, so open first and only synthesize events when a
	// build is actually needed.
	opts := hgs.Options{
		LocalityPartitioning: *locality,
		Replicate1Hop:        *replicate,
		Compress:             *compress,
		DataDir:              *dataDir,
		Engine:               hgs.StorageEngine(*engine),
		HotBytes:             *hotBytes,
		CompactRate:          *compactRate,
		WarmOnOpen:           hgs.WarmMode(*warm),
		IdleCompactAfter:     *idleAfter,
		TracePlans:           *trace,
	}
	if *dataDir != "" {
		if _, err := os.Stat(filepath.Join(*dataDir, "cluster.json")); err == nil {
			// Shape and engine flags the user actually typed must still
			// be checked against the persisted values; untyped ones
			// adopt them.
			explicit := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
			probeOpts := hgs.Options{
				DataDir:          *dataDir,
				HotBytes:         *hotBytes,
				CompactRate:      *compactRate,
				WarmOnOpen:       hgs.WarmMode(*warm),
				IdleCompactAfter: *idleAfter,
				TracePlans:       *trace,
			}
			if explicit["machines"] {
				probeOpts.Machines = *machines
			}
			if explicit["replication"] {
				probeOpts.Replication = *replication
			}
			if explicit["engine"] {
				probeOpts.Engine = hgs.StorageEngine(*engine)
			}
			probe, err := hgs.Open(probeOpts)
			if err != nil {
				log.Fatal(err)
			}
			if !probe.Loaded() {
				probe.Close()
				log.Fatalf("hgs-inspect: %s holds a store but no index (interrupted build?); delete it and rerun", *dataDir)
			}
			fmt.Fprintf(banner, "reattached to existing index in %s (engine %s; no rebuild; dataset/index flags come from the store)\n",
				*dataDir, probe.Engine())
			inspect(probe, report)
			dumpTopology(probe, *topology, os.Stdout)
			dumpMetrics(probe, *metrics)
			runBackup(probe, *backup)
			if err := probe.Close(); err != nil {
				log.Fatal(err)
			}
			return
		}
	}

	var events []hgs.Event
	switch *dataset {
	case "wiki":
		events = workload.Wikipedia(workload.WikiConfig{Nodes: *nodes, EdgesPerNode: 4, Seed: 1})
	case "friendster":
		size := 200
		events = workload.Friendster(workload.FriendsterConfig{
			Communities: max(*nodes/size, 1), CommunitySize: size,
			IntraDegree: 8, InterFraction: 0.05, Seed: 1,
		})
	case "dblp":
		events = workload.DBLP(workload.DBLPConfig{
			Authors: *nodes / 3, Papers: 2 * *nodes / 3,
			AuthorsPerPaper: 3, AttrChurn: *nodes / 2, Seed: 1,
		})
	default:
		fmt.Fprintf(os.Stderr, "hgs-inspect: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}

	opts.Machines = *machines
	opts.Replication = *replication
	opts.TimespanEvents = max(len(events)/2, 1)
	opts.EventlistSize = max(len(events)/16, 1)
	store, err := hgs.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(banner, "building TGI over %d events (m=%d, r=%d, locality=%v, durable=%v, engine=%s)...\n",
		len(events), *machines, *replication, *locality, store.Durable(), store.Engine())
	if err := store.Load(events); err != nil {
		log.Fatal(err)
	}
	inspect(store, report)
	dumpTopology(store, *topology, os.Stdout)
	dumpMetrics(store, *metrics)
	runBackup(store, *backup)
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
}

// runBackup copies the quiesced store into dir when -backup is set.
func runBackup(store *hgs.Store, dir string) {
	if dir == "" {
		return
	}
	if err := store.Backup(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup    : copied store into %s (open it with -data %s)\n", dir, dir)
}

// dumpTopology prints the placement state when -topology is set: one
// line per storage node (vnode count, key share, stored bytes, pending
// hints) plus the partition totals. Works on a freshly built store and
// on a reattached -data directory alike.
func dumpTopology(store *hgs.Store, enabled bool, out io.Writer) {
	if !enabled {
		return
	}
	info, err := store.Topology()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "topology  : %d nodes, r=%d, %d vnodes/node, %d partitions",
		len(info.Nodes), info.Replication, info.VirtualNodes, info.Partitions)
	if info.Rebalancing {
		fmt.Fprint(out, " (rebalancing)")
	}
	fmt.Fprintln(out)
	for _, n := range info.Nodes {
		state := "up"
		if n.Down {
			state = "DOWN"
		}
		fmt.Fprintf(out, "  node %-4d: %3d vnodes  %5.1f%% key share  %8d KB stored  %s",
			n.ID, n.VirtualNodes, 100*n.KeyShare, n.StoredBytes/1024, state)
		if n.PendingHints > 0 {
			fmt.Fprintf(out, "  (%d hinted writes pending)", n.PendingHints)
		}
		fmt.Fprintln(out)
	}
	if info.UnderReplicated > 0 {
		fmt.Fprintf(out, "  UNDER-REPLICATED: %d of %d partitions below r=%d\n",
			info.UnderReplicated, info.Partitions, info.Replication)
	}
}

// dumpMetrics writes the Prometheus exposition to stdout when -metrics
// is set (inspect already ran the probe queries, so the per-op latency
// histograms report real retrievals).
func dumpMetrics(store *hgs.Store, enabled bool) {
	if !enabled {
		return
	}
	if err := store.WriteMetrics(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// inspect runs index statistics and a few probe queries, reporting to
// out (io.Discard in -metrics mode: the queries still run and populate
// the metric registry, only the prose is suppressed).
func inspect(store *hgs.Store, out io.Writer) {

	st, err := store.Stats()
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, _ := store.TimeRange()
	fmt.Fprintf(out, "indexed   : %d events over [%d, %d] in %d timespans\n", st.Events, lo, hi, st.Timespans)
	fmt.Fprintf(out, "storage   : %d bytes logical (%d physical)\n", st.LogicalBytes, st.StoredBytes)
	fmt.Fprintf(out, "writes    : %d rows, %d bytes\n", st.StoreMetrics.Writes, st.StoreMetrics.BytesWritten)

	mid := (lo + hi) / 2
	for _, tt := range []hgs.Time{lo + (hi-lo)/4, mid, hi} {
		store.Cluster().ResetMetrics()
		g, err := store.Snapshot(tt)
		if err != nil {
			log.Fatal(err)
		}
		m := store.Cluster().Metrics()
		fmt.Fprintf(out, "snapshot@%-12d: %6d nodes %7d edges  (%d reads, %d round-trips, %d KB)\n",
			tt, g.NumNodes(), g.NumEdges(), m.Reads, m.RoundTrips, m.BytesRead/1024)
	}

	g, _ := store.Snapshot(hi)
	top := g.DegreeCentralityTop(3)
	for _, id := range top {
		store.Cluster().ResetMetrics()
		h, err := store.NodeHistory(id, lo, hi+1)
		if err != nil {
			log.Fatal(err)
		}
		m := store.Cluster().Metrics()
		fmt.Fprintf(out, "history node %-10d: %4d changes, %d versions  (%d reads, %d round-trips, %d KB)\n",
			id, len(h.Events), len(h.Versions()), m.Reads, m.RoundTrips, m.BytesRead/1024)
	}

	// A second pass over the same snapshots shows the decoded-delta
	// cache at work: warm queries mostly skip the store.
	store.Cluster().ResetMetrics()
	for _, tt := range []hgs.Time{lo + (hi-lo)/4, mid, hi} {
		if _, err := store.Snapshot(tt); err != nil {
			log.Fatal(err)
		}
	}
	m := store.Cluster().Metrics()
	st, err = store.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(out, "warm rerun: 3 snapshots in %d reads, %d round-trips; %s\n",
		m.Reads, m.RoundTrips, st.Cache)

	// Tiered stores also report the hot/cold split and background
	// maintenance since open.
	if tm := st.StoreMetrics; tm.TierHotReads > 0 || tm.TierColdReads > 0 {
		fmt.Fprintf(out, "tiers     : %d hot reads, %d cold reads, %d KB hot resident, %d KB flushed, %d compactions (%d idle)\n",
			tm.TierHotReads, tm.TierColdReads, tm.TierHotBytes/1024, tm.FlushedBytes/1024, tm.Compactions, tm.IdleCompactions)
		if tm.WarmedRows > 0 {
			fmt.Fprintf(out, "warm-up   : %d rows (%d KB) repopulated from cold segments on open\n",
				tm.WarmedRows, tm.WarmedBytes/1024)
		}
	}

	// With -trace, every probe query above left a plan trace: print the
	// per-query plan/cache/KV breakdown, oldest first.
	if traces := store.PlanTraces(); len(traces) > 0 {
		fmt.Fprintln(out, "plan traces (oldest first):")
		for _, tr := range traces {
			fmt.Fprintln(out, " ", tr)
		}
	}
}
