package kvstore

// Quorum reads and asynchronous read-repair.
//
// With ReadQuorum R > 1 a read consults R replicas instead of one,
// merges their answers by version stamp (stamp.go) and returns the
// newest. Any replica observed stale — an older stamp, or the row
// missing entirely — gets the winning version queued for background
// repair. Repairs are applied by a single worker goroutine under the
// write gate's read side (so they respect the rebalancer's barriers)
// and are stamp-guarded, so a repair racing a newer foreground write
// can never roll a row back. The repair queue is bounded and lossy:
// a dropped repair is re-detected by the next quorum read of the key,
// or converged by anti-entropy.

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend"
)

// repairQueueDepth bounds the read-repair backlog. Overflow drops the
// task (anti-entropy is the backstop), never blocks the read path.
const repairQueueDepth = 1024

// repairTask is one stale row observed by a quorum read: write value
// (stored form, stamp included) to node unless the node has moved on.
type repairTask struct {
	table, pkey, ckey string
	value             []byte
	node              *storageNode
}

// newerThan orders two stored versions: the higher stamp wins, and a
// stamp tie (only possible for pre-envelope rows, which all read as
// stamp 0) breaks by byte order so equal-stamp divergence still
// converges to one deterministic winner everywhere.
func newerThan(a, b []byte) bool {
	sa, sb := stampOf(a), stampOf(b)
	if sa != sb {
		return sa > sb
	}
	return bytes.Compare(a, b) > 0
}

// enqueueRepair hands a stale-replica observation to the repair worker,
// dropping it if the queue is full.
func (c *Cluster) enqueueRepair(t repairTask) {
	c.pendingRepairs.Add(1)
	select {
	case c.repairCh <- t:
	default:
		c.pendingRepairs.Add(-1)
	}
}

// PendingRepairs returns the number of read-repair tasks queued but not
// yet applied — tests quiesce on it reaching zero.
func (c *Cluster) PendingRepairs() int64 { return c.pendingRepairs.Load() }

// repairWorker drains the read-repair queue until Close.
func (c *Cluster) repairWorker() {
	defer c.bg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case t := <-c.repairCh:
			c.applyRepair(t)
			c.pendingRepairs.Add(-1)
		}
	}
}

// applyRepair writes the winning version to the stale replica, unless
// the replica no longer owns the partition (topology moved on), is down
// (revive replays hints instead), or already holds something at least
// as new (a foreground write landed since the read observed staleness).
// Repair traffic is background work: it charges no latency and no
// logical counters beyond Metrics.ReadRepairs.
func (c *Cluster) applyRepair(t repairTask) {
	c.writeGate.RLock()
	defer c.writeGate.RUnlock()
	var rt route
	c.writeRoute(t.table, t.pkey, &rt)
	owns := false
	for _, n := range rt.nodes {
		if n == t.node {
			owns = true
			break
		}
	}
	if !owns || t.node.down.Load() {
		return
	}
	t.node.mu.Lock()
	defer t.node.mu.Unlock()
	if t.node.closed || t.node.down.Load() {
		return
	}
	if cur, ok := t.node.be.Get(t.table, t.pkey, t.ckey); ok && !newerThan(t.value, cur) {
		return
	}
	t.node.be.Put(t.table, t.pkey, t.ckey, t.value)
	c.readRepairs.Add(1)
}

// replicaResp is one replica's answer to a quorum point read.
type replicaResp struct {
	node   *storageNode
	stored []byte
	found  bool
}

// quorumGet serves one key from up to want replicas, starting at the
// round-robin rotation point and failing over clockwise past refusing
// nodes, then merges by stamp. Failed visits count Failovers; needing a
// replica beyond the first want counts a DegradedRead. Returns the
// winning stored (stamped) value, whether any replica had the row, the
// number of node visits and the simulated wait charged. Caller holds
// readGate.RLock.
func (c *Cluster) quorumGet(ctx context.Context, rt *route, want int, table, pkey, ckey string) ([]byte, bool, int, time.Duration) {
	n := len(rt.nodes)
	if n == 0 {
		return nil, false, 0, 0
	}
	if want > n {
		want = n
	}
	start := 0
	if n > 1 {
		start = int(atomic.AddUint64(&c.rr, 1) % uint64(n))
	}
	var (
		got    []replicaResp
		wait   time.Duration
		failed int
	)
	visits := 0
	for i := 0; i < n && len(got) < want; i++ {
		node := rt.nodes[(start+i)%n]
		var out []byte
		found := false
		tr := node.tr
		d, err := c.serveNodeCtx(ctx, node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				out, found, cold = tr.GetTier(table, pkey, ckey)
			} else {
				out, found = be.Get(table, pkey, ckey)
			}
			return len(out), cold
		})
		visits++
		wait += d
		if err != nil {
			failed++
			continue
		}
		got = append(got, replicaResp{node: node, stored: out, found: found})
	}
	if failed > 0 {
		c.failovers.Add(int64(failed))
		if len(got) > 0 {
			c.degradedReads.Add(1)
		}
	}
	stored, found := c.mergeGet(got, table, pkey, ckey)
	return stored, found, visits, wait
}

// mergeGet picks the newest version among the replica answers and
// queues read-repair for every replica that returned an older version
// or no row at all. A key absent on every consulted replica merges to
// not-found (deletes carry no tombstones; see the anti-entropy notes).
func (c *Cluster) mergeGet(got []replicaResp, table, pkey, ckey string) ([]byte, bool) {
	var win []byte
	found := false
	for _, g := range got {
		if !g.found {
			continue
		}
		if !found || newerThan(g.stored, win) {
			win = g.stored
			found = true
		}
	}
	if !found {
		return nil, false
	}
	for _, g := range got {
		if !g.found || newerThan(win, g.stored) {
			c.enqueueRepair(repairTask{table: table, pkey: pkey, ckey: ckey, value: win, node: g.node})
		}
	}
	return win, true
}

// quorumScan serves one prefix scan from up to want replicas and merges
// per clustering key by stamp: for every row, the newest version any
// consulted replica holds wins, and replicas missing it (or holding an
// older one) get it queued for repair. A row present on one replica and
// absent on another is treated as present — the store keeps no
// tombstones, so a scan cannot distinguish "deleted here" from "never
// arrived here". Returns stored (stamped) rows in clustering order,
// the number of node visits and the simulated wait. Caller holds
// readGate.RLock.
func (c *Cluster) quorumScan(ctx context.Context, rt *route, want int, table, pkey, prefix string) ([]Row, int, time.Duration) {
	n := len(rt.nodes)
	if n == 0 {
		return nil, 0, 0
	}
	if want > n {
		want = n
	}
	start := 0
	if n > 1 {
		start = int(atomic.AddUint64(&c.rr, 1) % uint64(n))
	}
	type scanResp struct {
		node *storageNode
		rows []Row
	}
	var (
		got    []scanResp
		wait   time.Duration
		failed int
	)
	visits := 0
	for i := 0; i < n && len(got) < want; i++ {
		node := rt.nodes[(start+i)%n]
		var rows []Row
		tr := node.tr
		d, err := c.serveNodeCtx(ctx, node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				rows, cold = tr.ScanPrefixTier(table, pkey, prefix)
			} else {
				rows = be.ScanPrefix(table, pkey, prefix)
			}
			total := 0
			for _, r := range rows {
				total += len(r.Value)
			}
			return total, cold
		})
		visits++
		wait += d
		if err != nil {
			failed++
			continue
		}
		got = append(got, scanResp{node: node, rows: rows})
	}
	if failed > 0 {
		c.failovers.Add(int64(failed))
		if len(got) > 0 {
			c.degradedReads.Add(1)
		}
	}
	if len(got) == 0 {
		return nil, visits, wait
	}
	if len(got) == 1 {
		return got[0].rows, visits, wait
	}
	win := make(map[string][]byte)
	for _, g := range got {
		for _, r := range g.rows {
			if cur, ok := win[r.CKey]; !ok || newerThan(r.Value, cur) {
				win[r.CKey] = r.Value
			}
		}
	}
	for _, g := range got {
		have := make(map[string][]byte, len(g.rows))
		for _, r := range g.rows {
			have[r.CKey] = r.Value
		}
		for ck, v := range win {
			if cur, ok := have[ck]; !ok || newerThan(v, cur) {
				c.enqueueRepair(repairTask{table: table, pkey: pkey, ckey: ck, value: v, node: g.node})
			}
		}
	}
	out := make([]Row, 0, len(win))
	for ck, v := range win {
		out = append(out, Row{CKey: ck, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CKey < out[j].CKey })
	return out, visits, wait
}

// multiGetQuorum is the ReadQuorum > 1 body of MultiGetStatsCtx: each
// partition's keys are served concurrently through the per-key quorum
// path (quorum reads trade the single-visit batching of the R=1 path
// for R visits per key — divergence detection needs every replica's
// answer per key). Caller holds readGate.RLock.
func (c *Cluster) multiGetQuorum(ctx context.Context, refs []KeyRef, r int, out []GetResult, cs *CallStats, csMu *sync.Mutex) {
	type part struct{ table, pkey string }
	groups := make(map[part][]int)
	for i, ref := range refs {
		k := part{ref.Table, ref.PKey}
		groups[k] = append(groups[k], i)
	}
	var wg sync.WaitGroup
	for k, idxs := range groups {
		wg.Add(1)
		go func(k part, idxs []int) {
			defer wg.Done()
			var rt route
			c.readRoute(k.table, k.pkey, &rt)
			for _, i := range idxs {
				if ctx.Err() != nil {
					return
				}
				stored, found, visits, d := c.quorumGet(ctx, &rt, r, k.table, k.pkey, refs[i].CKey)
				c.reads.Add(1)
				nb := 0
				if found {
					_, val := splitStamp(stored)
					out[i] = GetResult{Value: val, Found: true}
					nb = len(val)
					c.bytesRead.Add(int64(nb))
				}
				csMu.Lock()
				cs.Reads++
				cs.RoundTrips += int64(visits)
				cs.BytesRead += int64(nb)
				cs.SimWait += d
				csMu.Unlock()
			}
		}(k, idxs)
	}
	wg.Wait()
}

// multiScanQuorum is the ReadQuorum > 1 body of MultiScanStatsCtx: the
// scans run concurrently, each through the merging quorum scan. Caller
// holds readGate.RLock.
func (c *Cluster) multiScanQuorum(ctx context.Context, refs []ScanRef, r int, out [][]Row, cs *CallStats, csMu *sync.Mutex) {
	var wg sync.WaitGroup
	for i := range refs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			var rt route
			c.readRoute(refs[i].Table, refs[i].PKey, &rt)
			rows, visits, d := c.quorumScan(ctx, &rt, r, refs[i].Table, refs[i].PKey, refs[i].Prefix)
			c.reads.Add(1)
			total := unwrapRows(rows)
			c.bytesRead.Add(int64(total))
			out[i] = rows
			csMu.Lock()
			cs.Reads++
			cs.RoundTrips += int64(visits)
			cs.BytesRead += int64(total)
			cs.SimWait += d
			csMu.Unlock()
		}(i)
	}
	wg.Wait()
}
