package partition

import (
	"math/rand"
	"testing"

	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// plantedPartitions builds a graph of `k` dense communities of size
// `commSize` with sparse cross-community edges — the structure on which
// locality partitioning must beat random (paper Fig 15a).
func plantedPartitions(rng *rand.Rand, k, commSize int, pIn, pOut float64) *WeightedGraph {
	wg := NewWeightedGraph()
	n := k * commSize
	for i := 0; i < n; i++ {
		wg.AddNode(graph.NodeID(i), 1)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := i/commSize == j/commSize
			p := pOut
			if same {
				p = pIn
			}
			if rng.Float64() < p {
				wg.AddEdge(graph.NodeID(i), graph.NodeID(j), 1)
			}
		}
	}
	return wg
}

func TestHashPIDStableAndInRange(t *testing.T) {
	for id := graph.NodeID(0); id < 1000; id++ {
		p := HashPID(id, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("pid out of range: %d", p)
		}
		if p != HashPID(id, 7) {
			t.Fatal("hash pid not deterministic")
		}
	}
	if HashPID(42, 1) != 0 || HashPID(42, 0) != 0 {
		t.Fatal("k<=1 must map to 0")
	}
}

func TestRandomAssignRoughlyBalanced(t *testing.T) {
	ids := make([]graph.NodeID, 10000)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	a := RandomAssign(ids, 10)
	for pid, size := range a.Sizes(10) {
		if size < 800 || size > 1200 {
			t.Fatalf("partition %d size %d too far from 1000", pid, size)
		}
	}
}

func TestLocalityBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wg := plantedPartitions(rng, 4, 50, 0.3, 0.005)
	a := LocalityAssign(wg, 4, 3)
	sizes := a.Sizes(4)
	for pid, size := range sizes {
		// capacity = ceil(200/4 * 1.05)+1 = 54
		if size > 54 {
			t.Fatalf("partition %d overfull: %d", pid, size)
		}
		if size == 0 {
			t.Fatalf("partition %d empty", pid)
		}
	}
	if len(a) != 200 {
		t.Fatalf("assigned %d nodes, want 200", len(a))
	}
}

func TestLocalityBeatsRandomOnCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wg := plantedPartitions(rng, 4, 50, 0.3, 0.01)
	ids := make([]graph.NodeID, 0, len(wg.NodeW))
	for id := range wg.NodeW {
		ids = append(ids, id)
	}
	randCut := wg.EdgeCut(RandomAssign(ids, 4))
	locCut := wg.EdgeCut(LocalityAssign(wg, 4, 3))
	if locCut >= randCut/2 {
		t.Fatalf("locality cut %.0f not clearly better than random cut %.0f", locCut, randCut)
	}
}

func TestLocalitySingletonAndEmpty(t *testing.T) {
	wg := NewWeightedGraph()
	if a := LocalityAssign(wg, 4, 2); len(a) != 0 {
		t.Fatal("empty graph should yield empty assignment")
	}
	wg.AddNode(5, 1)
	a := LocalityAssign(wg, 1, 2)
	if a[5] != 0 {
		t.Fatal("k=1 must map everything to partition 0")
	}
}

func TestEdgeCut(t *testing.T) {
	wg := NewWeightedGraph()
	wg.AddEdge(1, 2, 2.0)
	wg.AddEdge(2, 3, 1.0)
	a := Assignment{1: 0, 2: 0, 3: 1}
	if cut := wg.EdgeCut(a); cut != 1.0 {
		t.Fatalf("cut = %v, want 1", cut)
	}
}

func historyForCollapse() (*graph.Graph, []graph.Event, temporal.Interval) {
	// Initial: edge (1,2) exists from t=0.
	g := graph.New()
	g.AddEdge(1, 2)
	events := []graph.Event{
		{Time: 25, Kind: graph.AddEdge, Node: 2, Other: 3},    // exists 25..100: 75%
		{Time: 50, Kind: graph.RemoveEdge, Node: 1, Other: 2}, // (1,2) exists 0..50: 50%
		{Time: 80, Kind: graph.AddNode, Node: 9},              // isolated, must still appear
	}
	return g, events, temporal.NewInterval(0, 100)
}

func TestCollapseUnionMax(t *testing.T) {
	g, evs, iv := historyForCollapse()
	wg := Collapse(g, evs, iv, OmegaUnionMax, NodeWeightUniform)
	if len(wg.EdgeW) != 2 {
		t.Fatalf("union-max edges = %d, want 2", len(wg.EdgeW))
	}
	if wg.EdgeW[MakePair(1, 2)] != 1 || wg.EdgeW[MakePair(2, 3)] != 1 {
		t.Fatalf("union-max weights wrong: %v", wg.EdgeW)
	}
	if _, ok := wg.NodeW[9]; !ok {
		t.Fatal("vertex existing during span missing from collapse")
	}
}

func TestCollapseUnionMean(t *testing.T) {
	g, evs, iv := historyForCollapse()
	wg := Collapse(g, evs, iv, OmegaUnionMean, NodeWeightUniform)
	if w := wg.EdgeW[MakePair(1, 2)]; w < 0.49 || w > 0.51 {
		t.Fatalf("(1,2) mean weight = %v, want 0.5", w)
	}
	if w := wg.EdgeW[MakePair(2, 3)]; w < 0.74 || w > 0.76 {
		t.Fatalf("(2,3) mean weight = %v, want 0.75", w)
	}
}

func TestCollapseMedian(t *testing.T) {
	g, evs, iv := historyForCollapse()
	wg := Collapse(g, evs, iv, OmegaMedian, NodeWeightUniform)
	// At t=50 the RemoveEdge(1,2) fires; the median snapshot is taken just
	// before events at t>=50 apply, so (1,2) and (2,3) both exist.
	if _, ok := wg.EdgeW[MakePair(2, 3)]; !ok {
		t.Fatalf("median must include (2,3): %v", wg.EdgeW)
	}
}

func TestCollapseNodeWeights(t *testing.T) {
	g, evs, iv := historyForCollapse()
	uni := Collapse(g, evs, iv, OmegaUnionMax, NodeWeightUniform)
	for id, w := range uni.NodeW {
		if w != 1 {
			t.Fatalf("uniform weight of %d = %v", id, w)
		}
	}
	deg := Collapse(g, evs, iv, OmegaUnionMax, NodeWeightDegree)
	if deg.NodeW[2] != 2 {
		t.Fatalf("degree weight of node 2 = %v, want 2", deg.NodeW[2])
	}
	avg := Collapse(g, evs, iv, OmegaUnionMax, NodeWeightAvgDegree)
	// Node 2: (1,2) for 50% + (2,3) for 75% = 1.25 average degree.
	if w := avg.NodeW[2]; w < 1.24 || w > 1.26 {
		t.Fatalf("avg-degree weight of node 2 = %v, want 1.25", w)
	}
}

func TestCollapseReAddedEdgeAccumulates(t *testing.T) {
	g := graph.New()
	evs := []graph.Event{
		{Time: 0, Kind: graph.AddEdge, Node: 1, Other: 2},
		{Time: 10, Kind: graph.RemoveEdge, Node: 1, Other: 2},
		{Time: 90, Kind: graph.AddEdge, Node: 1, Other: 2},
	}
	wg := Collapse(g, evs, temporal.NewInterval(0, 100), OmegaUnionMean, NodeWeightUniform)
	if w := wg.EdgeW[MakePair(1, 2)]; w < 0.19 || w > 0.21 {
		t.Fatalf("re-added edge weight = %v, want 0.2", w)
	}
}

func TestCollapseRemoveNodeClosesEdges(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	evs := []graph.Event{{Time: 30, Kind: graph.RemoveNode, Node: 1}}
	wg := Collapse(g, evs, temporal.NewInterval(0, 100), OmegaUnionMean, NodeWeightUniform)
	if w := wg.EdgeW[MakePair(1, 2)]; w < 0.29 || w > 0.31 {
		t.Fatalf("edge weight after RemoveNode = %v, want 0.3", w)
	}
}

func TestOmegaAndWeightingStrings(t *testing.T) {
	if OmegaUnionMax.String() != "union-max" || OmegaUnionMean.String() != "union-mean" || OmegaMedian.String() != "median" {
		t.Fatal("Omega names wrong")
	}
	if NodeWeightUniform.String() != "uniform" || NodeWeightDegree.String() != "degree" || NodeWeightAvgDegree.String() != "avg-degree" {
		t.Fatal("weighting names wrong")
	}
	if Random.String() != "random" || Locality.String() != "locality" {
		t.Fatal("kind names wrong")
	}
}
