// Package core implements the Temporal Graph Index (TGI), the paper's
// primary contribution (§4): a partitioned, hierarchically
// temporally-compressed index over the entire history of a graph, stored
// in a distributed key-value store, supporting snapshot retrieval, node
// histories, and neighborhood (version) retrieval with parallel fetch.
//
// Layout (paper §4.4): history is cut into timespans; the graph is
// horizontally partitioned by a random hash of node id into ns partitions
// (sid); within each (timespan, sid) a DeltaGraph-style tree of derived
// partitioned snapshots is built over leaf checkpoints spaced every
// EventlistSize events; every stored delta and eventlist is split into
// micro-deltas of roughly PartitionSize nodes (pid) by a per-timespan
// partition map (random or locality); version chains record, per node,
// which eventlists contain its changes.
package core

import (
	"context"
	"fmt"
	"runtime"

	"hgs/internal/fetch"
	"hgs/internal/obs"
	"hgs/internal/partition"
)

// Table names in the backing store. The key schema is owned by the
// unified fetch layer (internal/fetch); these aliases keep the names
// usable throughout core and its tests.
const (
	TableDeltas    = fetch.TableDeltas
	TableEvents    = fetch.TableEvents
	TableVersions  = fetch.TableVersions
	TableTimespans = fetch.TableTimespans
	TableGraph     = fetch.TableGraph
	TableMicroPart = fetch.TableMicroPart
	TableAux       = fetch.TableAux
	TableAuxEvents = fetch.TableAuxEvents
)

// Config holds the TGI construction parameters (paper §4.4: timespan
// length ts, horizontal partitions ns, eventlist size l, micro-delta
// partition size psize, plus the partitioning strategy knobs of §4.5).
type Config struct {
	// TimespanEvents is the number of events per timespan (uniform
	// time-span length in number of events — the paper's practical choice).
	TimespanEvents int
	// EventlistSize is l: events per eventlist; leaf checkpoints are
	// spaced this many events apart.
	EventlistSize int
	// Arity is the fan-in k of the hierarchical delta tree.
	Arity int
	// HorizontalPartitions is ns: the number of hash partitions that
	// spread each delta across the cluster.
	HorizontalPartitions int
	// PartitionSize is psize: target node count per micro-delta.
	PartitionSize int
	// Partitioning selects random or locality micro-partitioning.
	Partitioning partition.Kind
	// Omega is the temporal-collapse function for locality partitioning.
	Omega partition.Omega
	// NodeWeighting is the node-weight option for locality partitioning.
	NodeWeighting partition.NodeWeighting
	// Replicate1Hop stores auxiliary frontier micro-deltas to accelerate
	// 1-hop neighborhood retrieval.
	Replicate1Hop bool
	// Compress gzip-compresses stored blobs.
	Compress bool
	// FetchClients is c: the default number of parallel query processors
	// used by retrieval operations.
	FetchClients int
	// CacheBytes bounds the query manager's decoded-delta cache. Zero
	// selects DefaultCacheBytes; a negative value disables caching.
	// Unlike the construction parameters above this is a runtime knob of
	// the reading process, not a property of the stored index: it is not
	// persisted, and a handle attached to an existing index keeps the
	// value it was opened with.
	CacheBytes int64 `json:"-"`
	// Cache, when non-nil, is used as the decoded-delta cache instead of
	// building a fresh one from CacheBytes — the hook that lets several
	// handles of the same stored index share one cache, so a second
	// reader does not re-pay the first one's cold misses. Like
	// CacheBytes it is a property of the reading process: not persisted,
	// and kept across an Attach adoption.
	Cache *fetch.Cache `json:"-"`
	// TracePlans keeps a plan trace for every retrieval this handle
	// runs — the planned key set and its cache-hit / negative-hit /
	// KV-read breakdown — in a bounded ring surfaced by TGI.PlanTraces
	// and Stats.Traces. A runtime knob of the reading process like
	// CacheBytes: not persisted, kept across an Attach adoption.
	// Per-call tracing via FetchOptions.Trace works regardless.
	TracePlans bool `json:"-"`
	// MaterializeWorkers bounds the worker pool used to apply fetched
	// micro-deltas and replay boundary eventlists when materializing
	// snapshots and neighborhoods. Zero (the default) selects
	// runtime.GOMAXPROCS(0); 1 restores fully sequential
	// materialization. Unlike FetchClients — which shapes the I/O plan
	// and therefore round-trips — this only changes local CPU
	// parallelism, so results and plan traces are identical for any
	// value. A runtime knob of the reading process like CacheBytes: not
	// persisted, kept across an Attach adoption.
	MaterializeWorkers int `json:"-"`
	// Obs, when non-nil, is the metrics registry this handle records
	// into: the decoded-delta cache counters register on construction,
	// and every retrieval and ingest operation observes its wall time
	// (and, for retrievals, the simulated storage wait attributed by
	// the plan trace) into per-op latency histograms. A runtime knob
	// of the reading process like Cache: not persisted, kept across an
	// Attach adoption. hgs.Open wires each Store's registry through
	// here.
	Obs *obs.Registry `json:"-"`
}

// DefaultCacheBytes is the decoded-delta cache budget used when
// Config.CacheBytes is zero (64 MiB).
const DefaultCacheBytes = 64 << 20

// CacheBudget maps a CacheBytes knob to the cache constructor's
// convention (<= 0 disables): negative disables, zero selects
// DefaultCacheBytes. The one place the sentinel semantics live —
// hgs.Open sizes the cache shared across DataDir handles with it.
func CacheBudget(cacheBytes int64) int64 {
	switch {
	case cacheBytes < 0:
		return 0
	case cacheBytes == 0:
		return DefaultCacheBytes
	default:
		return cacheBytes
	}
}

func (c Config) cacheBudget() int64 { return CacheBudget(c.CacheBytes) }

// DefaultConfig returns the defaults used throughout the evaluation
// unless a figure varies a parameter (ps=500, random partitioning).
func DefaultConfig() Config {
	return Config{
		TimespanEvents:       200_000,
		EventlistSize:        25_000,
		Arity:                2,
		HorizontalPartitions: 4,
		PartitionSize:        500,
		Partitioning:         partition.Random,
		Omega:                partition.OmegaUnionMax,
		NodeWeighting:        partition.NodeWeightUniform,
		Replicate1Hop:        false,
		Compress:             false,
		FetchClients:         4,
	}
}

// normalize clamps invalid values to sane minimums.
func (c *Config) normalize() {
	if c.TimespanEvents < 1 {
		c.TimespanEvents = 200_000
	}
	if c.EventlistSize < 1 {
		c.EventlistSize = 25_000
	}
	if c.EventlistSize > c.TimespanEvents {
		c.EventlistSize = c.TimespanEvents
	}
	if c.Arity < 2 {
		c.Arity = 2
	}
	if c.HorizontalPartitions < 1 {
		c.HorizontalPartitions = 1
	}
	if c.PartitionSize < 1 {
		c.PartitionSize = 500
	}
	if c.FetchClients < 1 {
		c.FetchClients = 1
	}
}

// Validate reports configuration errors that normalize cannot repair.
func (c Config) Validate() error {
	if c.TimespanEvents < c.EventlistSize {
		return fmt.Errorf("core: TimespanEvents (%d) < EventlistSize (%d)", c.TimespanEvents, c.EventlistSize)
	}
	return nil
}

// DeltaGraphConfig returns the configuration that degenerates TGI into
// the DeltaGraph index of the authors' prior work (ICDE 2013): monolithic
// deltas (one huge micro-partition, one horizontal partition) and no
// version chains are consulted. Used as a baseline (paper §4.2, Table 1).
func DeltaGraphConfig() Config {
	c := DefaultConfig()
	c.HorizontalPartitions = 1
	c.PartitionSize = 1 << 30
	return c
}

// FetchOptions tune a single retrieval call. It is the one per-call
// options struct of the query API: every retrieval method takes it (nil
// selects all defaults), and new per-call knobs land here rather than
// as new method variants.
type FetchOptions struct {
	// Context carries the call's deadline and cancellation signal. When
	// it can fire, batched store rounds are issued through the cluster's
	// cancellable surface, decode/materialize workers stop at partition
	// boundaries, and the retrieval returns ctx.Err() promptly without
	// leaking goroutines or installing partial results in the cache.
	// Nil means context.Background() (never cancelled).
	Context context.Context
	// Clients overrides Config.FetchClients when > 0 (the experiments'
	// parallel fetch factor c).
	Clients int
	// Trace, when non-nil, receives this retrieval's plan trace: the
	// planned request counts, the cache-hit/negative-hit breakdown per
	// table, and the exact KV reads, round-trips, bytes and simulated
	// wait the call charged. Read it back with Trace.Record once the
	// call returns.
	Trace *fetch.Trace
}

// ctx resolves the call context: the caller's when set, else Background.
func (o *FetchOptions) ctx() context.Context {
	if o != nil && o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (c Config) clients(opts *FetchOptions) int {
	if opts != nil && opts.Clients > 0 {
		return opts.Clients
	}
	if c.FetchClients > 0 {
		return c.FetchClients
	}
	return 1
}

// materializeWorkers resolves the MaterializeWorkers knob: <= 0 means
// one worker per available CPU.
func (c Config) materializeWorkers() int {
	if c.MaterializeWorkers > 0 {
		return c.MaterializeWorkers
	}
	return runtime.GOMAXPROCS(0)
}
