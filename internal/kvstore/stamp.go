package kvstore

// The per-key version stamp behind quorum reads, read-repair and
// anti-entropy. Every value the cluster stores is wrapped in a small
// envelope carrying a cluster-wide monotone sequence stamp:
//
//	[0xFE][8-byte big-endian stamp][payload]
//
// The stamp travels with the row through every path that moves stored
// bytes — hinted handoff, rebalance streaming, backup/restore — so any
// two copies of a row can be ordered without a sidecar table. The
// counter is seeded from the wall clock at Open (nanoseconds), which
// keeps stamps monotone across process restarts without scanning the
// engines for the previous maximum.
//
// The tag byte 0xFE cannot collide with any payload the store has ever
// written unwrapped: codec-framed blobs start with a 0x00/0x01 flag,
// and the metadata tables store ASCII. A value without the tag reads
// as stamp 0 — pre-envelope rows order before every stamped write.

import "encoding/binary"

const (
	stampTag      = 0xFE
	stampOverhead = 9
)

// wrapStamp copies value into a fresh stamped envelope.
func wrapStamp(stamp uint64, value []byte) []byte {
	out := make([]byte, stampOverhead+len(value))
	out[0] = stampTag
	binary.BigEndian.PutUint64(out[1:9], stamp)
	copy(out[stampOverhead:], value)
	return out
}

// splitStamp splits a stored value into its stamp and payload. The
// payload aliases stored (backends return caller-owned copies, so the
// alias is safe to hand out).
func splitStamp(stored []byte) (uint64, []byte) {
	if len(stored) >= stampOverhead && stored[0] == stampTag {
		return binary.BigEndian.Uint64(stored[1:9]), stored[stampOverhead:]
	}
	return 0, stored
}

// stampOf returns just the stamp of a stored value.
func stampOf(stored []byte) uint64 {
	s, _ := splitStamp(stored)
	return s
}

// unwrapRows strips the stamp envelope from every row in place (the
// rows are engine-returned copies) and returns the total payload byte
// count — what the logical byte counters charge.
func unwrapRows(rows []Row) int {
	total := 0
	for i := range rows {
		_, v := splitStamp(rows[i].Value)
		rows[i].Value = v
		total += len(v)
	}
	return total
}
