package kvstore

import "hgs/internal/obs"

// RegisterObs registers the cluster's counters into r as func-backed
// metric families, sampled at exposition/snapshot time: the logical
// operation counters (reads, writes, bytes, round-trips, simulated
// wait) and the per-tier counters aggregated from engines implementing
// backend.TierCounting. The tier families report the engines' raw
// cumulative totals (monotone for Prometheus); the operation counters
// read the same atomics Metrics does and therefore restart from zero
// after ResetMetrics — scrape-side rate() handles the reset like a
// process restart. Registering the same cluster again (a re-attached
// handle) replaces the samplers.
func (c *Cluster) RegisterObs(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	r.CounterFunc("hgs_kv_reads_total",
		"Logical KV read operations (one per key or prefix scan, even inside a batch).",
		func() float64 { return float64(c.reads.Load()) })
	r.CounterFunc("hgs_kv_writes_total",
		"Logical KV write operations.",
		func() float64 { return float64(c.writes.Load()) })
	r.CounterFunc("hgs_kv_read_bytes_total",
		"Value bytes moved by KV reads.",
		func() float64 { return float64(c.bytesRead.Load()) })
	r.CounterFunc("hgs_kv_written_bytes_total",
		"Value bytes moved by KV writes.",
		func() float64 { return float64(c.bytesWritten.Load()) })
	r.CounterFunc("hgs_kv_round_trips_total",
		"Physical storage-node visits (one per machine per batched call).",
		func() float64 { return float64(c.roundTrips.Load()) })
	r.CounterFunc("hgs_kv_simwait_seconds_total",
		"Simulated storage service time charged by the latency model.",
		func() float64 { return float64(c.simWait.Load()) / 1e9 })
	r.GaugeFunc("hgs_kv_stored_bytes",
		"Physical bytes currently stored across all replicas.",
		func() float64 { return float64(c.StoredBytes()) })
	r.GaugeFunc("hgs_kv_machines",
		"Storage nodes currently in the cluster.",
		func() float64 { return float64(c.Machines()) })

	r.CounterFunc("hgs_kv_failovers_total",
		"Replica visits that failed during reads (node down or injected fault).",
		func() float64 { return float64(c.failovers.Load()) })
	r.CounterFunc("hgs_kv_degraded_reads_total",
		"Reads answered by a replica other than the rotation-preferred one.",
		func() float64 { return float64(c.degradedReads.Load()) })
	r.CounterFunc("hgs_kv_under_replicated_writes_total",
		"Logical writes that reached fewer live replicas than the replication factor.",
		func() float64 { return float64(c.underRepWrites.Load()) })
	r.CounterFunc("hgs_kv_hinted_writes_total",
		"Per-replica mutations queued as hinted handoff for a down node.",
		func() float64 { return float64(c.hintedWrites.Load()) })
	r.CounterFunc("hgs_kv_read_repairs_total",
		"Rows rewritten on a stale replica after a quorum read observed divergence.",
		func() float64 { return float64(c.readRepairs.Load()) })
	r.GaugeFunc("hgs_kv_pending_repairs",
		"Read-repair tasks queued but not yet applied.",
		func() float64 { return float64(c.pendingRepairs.Load()) })
	r.CounterFunc("hgs_kv_antientropy_runs_total",
		"Anti-entropy sweeps completed.",
		func() float64 { return float64(c.aeRuns.Load()) })
	r.CounterFunc("hgs_kv_antientropy_partitions_total",
		"Partitions found divergent and converged by anti-entropy.",
		func() float64 { return float64(c.aeParts.Load()) })
	r.CounterFunc("hgs_kv_antientropy_rows_total",
		"Rows streamed between replicas by anti-entropy repair.",
		func() float64 { return float64(c.aeRows.Load()) })
	r.CounterFunc("hgs_kv_antientropy_bytes_total",
		"Bytes streamed between replicas by anti-entropy repair.",
		func() float64 { return float64(c.aeBytes.Load()) })

	r.GaugeFunc("hgs_ring_nodes",
		"Nodes on the placement ring.",
		func() float64 { return float64(c.Machines()) })
	r.GaugeFunc("hgs_ring_nodes_down",
		"Nodes currently marked failed.",
		func() float64 {
			down := 0
			for _, n := range c.nodeList() {
				if n.down.Load() {
					down++
				}
			}
			return float64(down)
		})
	r.GaugeFunc("hgs_ring_rebalance_active",
		"1 while a background topology migration is streaming.",
		func() float64 {
			if c.Rebalancing() {
				return 1
			}
			return 0
		})
	r.CounterFunc("hgs_ring_rebalances_total",
		"Topology changes (node add/remove) started.",
		func() float64 { return float64(c.rebalances.Load()) })
	r.CounterFunc("hgs_ring_rebalanced_partitions_total",
		"Partitions streamed to new owners by the rebalancer.",
		func() float64 { return float64(c.rebalancedParts.Load()) })
	r.CounterFunc("hgs_ring_rebalanced_rows_total",
		"Rows streamed to new owners by the rebalancer.",
		func() float64 { return float64(c.rebalancedRows.Load()) })
	r.CounterFunc("hgs_ring_rebalanced_bytes_total",
		"Bytes streamed to new owners by the rebalancer.",
		func() float64 { return float64(c.rebalancedBytes.Load()) })

	r.CounterFunc("hgs_tier_hot_reads_total",
		"Row lookups served from the memory tier of tiered engines.",
		func() float64 { return float64(c.tierTotals().HotHits) })
	r.CounterFunc("hgs_tier_cold_reads_total",
		"Row lookups that fell through to the disk tier of tiered engines.",
		func() float64 { return float64(c.tierTotals().ColdReads) })
	r.CounterFunc("hgs_tier_flushed_bytes_total",
		"Bytes migrated from the hot to the cold tier by background flushing.",
		func() float64 { return float64(c.tierTotals().FlushedBytes) })
	r.CounterFunc("hgs_tier_compactions_total",
		"Background compaction passes of tiered engines.",
		func() float64 { return float64(c.tierTotals().Compactions) })
	r.CounterFunc("hgs_tier_idle_compactions_total",
		"Full-speed maintenance units run inside idle windows.",
		func() float64 { return float64(c.tierTotals().IdleCompactions) })
	r.CounterFunc("hgs_tier_warmed_rows_total",
		"Rows repopulated into memory from cold segments on open.",
		func() float64 { return float64(c.tierTotals().WarmedRows) })
	r.CounterFunc("hgs_tier_warmed_bytes_total",
		"Bytes repopulated into memory from cold segments on open.",
		func() float64 { return float64(c.tierTotals().WarmedBytes) })
	r.GaugeFunc("hgs_tier_hot_bytes",
		"Bytes currently memory-resident in tiered engines.",
		func() float64 { return float64(c.tierTotals().HotBytes) })
	r.GaugeFunc("hgs_tier_warming",
		"Nodes whose open-time hot-tier warm-up is still running.",
		func() float64 { return float64(c.tierTotals().Warming) })
}
