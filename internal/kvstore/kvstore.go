// Package kvstore models the distributed key-value store that backs the
// Temporal Graph Index. The paper uses an Apache Cassandra cluster; this
// package reproduces the properties its evaluation depends on:
//
//   - data placement by partition key across m storage machines, on a
//     consistent-hash ring (internal/ring) so the node set can change
//     shape at runtime with bounded data movement,
//   - replication factor r with replication-aware reads: one replica
//     serves, failing over to the next on a down or faulty node,
//     write-all with hinted handoff for replicas that are down,
//   - rows sorted by clustering key within a partition, so that all
//     micro-partitions of one delta scan contiguously (paper §4.4 item 5),
//   - per-machine serialized service with a tunable cost model (base cost
//     per operation plus per-KB transfer cost), which yields the parallel
//     fetch speedups and saturation of Figures 11–12,
//   - read/write/byte counters for the cost accounting of Table 1,
//   - node lifecycle: AddNode/RemoveNode trigger a background rebalance
//     that streams only the moved partitions between node engines under
//     a rate limit, serving every partition from its old or new owner
//     until the handoff commits (see topology.go),
//   - per-node fault injection (FailNode/ReviveNode, InjectFault) so
//     tests and benchmarks cover degraded reads.
//
// Each node's actual row storage is a pluggable backend.Backend: the
// default in-memory memtable keeps the store a pure simulation, while a
// durable engine (backend/disklog) makes the cluster survive process
// restarts. The cluster is in-process and safe for concurrent use.
package kvstore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hgs/internal/backend"
	"hgs/internal/backend/memtable"
	"hgs/internal/ring"
)

// LatencyModel charges simulated service time per storage operation.
// With Enabled=false operations only update counters, which keeps unit
// tests fast while benchmarks exercise the full model.
type LatencyModel struct {
	Enabled bool
	// BaseOp is charged once per request (seek + request overhead).
	BaseOp time.Duration
	// PerKB is charged per kilobyte moved.
	PerKB time.Duration
	// ColdRead is charged per row lookup that a tiered engine served
	// from its cold (disk) tier — the seek the hot tier would have
	// absorbed. Engines without tier counters charge nothing extra.
	ColdRead time.Duration
}

// DefaultLatency approximates a commodity networked disk-backed store at
// the scale of our benchmark datasets.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		Enabled:  true,
		BaseOp:   60 * time.Microsecond,
		PerKB:    250 * time.Microsecond,
		ColdRead: 200 * time.Microsecond,
	}
}

// Cost returns the simulated service time for an operation moving n bytes.
func (lm LatencyModel) Cost(n int) time.Duration {
	if !lm.Enabled {
		return 0
	}
	return lm.BaseOp + time.Duration(n)*lm.PerKB/1024
}

// Config describes a cluster.
type Config struct {
	// Machines is the number of storage nodes (paper parameter m).
	// Ignored when Nodes is set.
	Machines int
	// Nodes, when non-empty, names the storage nodes explicitly (a
	// reattached durable cluster whose membership changed since
	// creation). Empty means nodes 0..Machines-1.
	Nodes []int
	// Replication is the number of replicas per partition (paper r).
	Replication int
	// ReadQuorum is the number of replicas a read consults (R). The
	// default 1 preserves read-one behavior; with R > 1 reads fan out,
	// return the newest version by stamp and queue read-repair for
	// replicas observed stale. Clamped to [1, Replication].
	ReadQuorum int
	// WriteQuorum is the number of replica acknowledgements a write
	// waits for (W). The default (0) waits for every replica, today's
	// write-all behavior; with W < Replication the write returns after
	// W live replicas applied it and the rest complete in the
	// background. Clamped to [1, Replication]. R+W > Replication gives
	// read-your-writes through the quorum intersection.
	WriteQuorum int
	// HintDir, when non-empty, persists each node's hinted-handoff
	// queue to a per-node log under this directory (length-prefixed
	// CRC32 records, disklog-style), so hints survive a process restart:
	// they are replayed on revive and on reopen. Empty keeps hints
	// in memory only.
	HintDir string
	// AntiEntropyInterval, when positive, runs a background
	// anti-entropy sweep (RepairPartitions) at this period. Zero
	// disables the loop; RepairPartitions can still be called
	// explicitly.
	AntiEntropyInterval time.Duration
	// VirtualNodes is the number of points each node projects onto the
	// placement ring; zero picks ring.DefaultVirtualNodes. Placement
	// depends on it, so durable stores must reopen with the value they
	// were created with.
	VirtualNodes int
	// RebalanceRate caps topology-change data streaming in bytes per
	// second, the CompactRate convention: zero picks the 8 MiB/s
	// default, negative disables the limit.
	RebalanceRate int64
	// Latency is the per-node service cost model.
	Latency LatencyModel
	// Backend creates the storage engine of each node. Nil uses the
	// in-memory memtable engine. AddNode calls it with fresh node ids at
	// runtime.
	Backend backend.Factory
	// OnTopologyCommit, when set, persists a topology change: the
	// rebalancer calls it with the post-change node set after every
	// moved partition has been copied to its new owners and before any
	// old copy is dropped — so a crash around the commit point leaves
	// either the old topology with complete old placement, or the new
	// topology with complete new placement. An error skips the drop
	// phase (old copies are kept) and surfaces from WaitRebalance.
	OnTopologyCommit func(nodes []int) error
}

// defaultRebalanceRate is the rebalancer's streaming budget when
// Config.RebalanceRate is zero.
const defaultRebalanceRate = 8 << 20

// Validate normalizes the configuration.
func (c *Config) normalize() {
	if len(c.Nodes) == 0 {
		if c.Machines < 1 {
			c.Machines = 1
		}
		c.Nodes = make([]int, c.Machines)
		for i := range c.Nodes {
			c.Nodes[i] = i
		}
	} else {
		ns := append([]int(nil), c.Nodes...)
		sort.Ints(ns)
		dst := ns[:0]
		for i, n := range ns {
			if i == 0 || n != ns[i-1] {
				dst = append(dst, n)
			}
		}
		c.Nodes = dst
	}
	c.Machines = len(c.Nodes)
	if c.Replication < 1 {
		c.Replication = 1
	}
	if c.Replication > c.Machines {
		c.Replication = c.Machines
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = ring.DefaultVirtualNodes
	}
	if c.RebalanceRate == 0 {
		c.RebalanceRate = defaultRebalanceRate
	}
	c.ReadQuorum = clampQuorum(c.ReadQuorum, 1, c.Replication)
	c.WriteQuorum = clampQuorum(c.WriteQuorum, c.Replication, c.Replication)
}

// clampQuorum normalizes a quorum knob: zero picks def, anything else
// is clamped to [1, max].
func clampQuorum(q, def, max int) int {
	if q == 0 {
		return def
	}
	if q < 1 {
		return 1
	}
	if q > max {
		return max
	}
	return q
}

// Metrics is a snapshot of cluster-wide counters. Reads and Writes count
// logical operations (one per key or prefix scan, even inside a batch);
// RoundTrips counts physical node visits — a MultiGet touching two
// machines is many Reads but two RoundTrips. SimWait is the total
// simulated service time charged by the latency model.
//
// The replication-awareness counters: Failovers counts replica visits
// that failed (node down or injected fault) during reads; DegradedReads
// counts reads that could not be served by their rotation-preferred
// replica and were answered by another one. UnderReplicatedWrites
// counts logical writes that reached fewer live replicas than the
// replication factor; HintedWrites counts the per-replica mutations
// queued for a down node (replayed when it is revived). All four stay
// zero while every node is healthy. Rebalanced* count the background
// rebalancer's partition streaming; RebalanceActive is a 0/1 gauge.
//
// The Tier* fields aggregate the per-tier counters of engines that
// implement backend.TierCounting (the tiered hot/cold backend); they
// stay zero on single-tier engines. TierHotReads row lookups were
// served from memory without disk I/O, TierColdReads fell through to
// the disk tier; Compactions and FlushedBytes count the background
// maintenance that migrated data between tiers, IdleCompactions the
// units of full-speed work done inside idle windows (drains, merges
// and full compactions each count once). WarmedRows and
// WarmedBytes count rows the engines repopulated into memory from
// their newest cold data (restart warm-up). TierHotBytes is a gauge of
// the bytes currently memory-resident (not affected by ResetMetrics);
// TierWarming is a gauge counting nodes whose open-time warm-up is
// still running — zero means every node finished warming.
type Metrics struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	RoundTrips   int64
	SimWait      time.Duration

	Failovers             int64
	DegradedReads         int64
	UnderReplicatedWrites int64
	HintedWrites          int64

	// ReadRepairs counts rows rewritten on a stale replica after a
	// quorum read observed divergence (zero on a healthy cluster).
	// The AntiEntropy* counters track the background comparator:
	// sweeps run, partitions found divergent and repaired, and the
	// rows/bytes streamed to converge them.
	ReadRepairs           int64
	AntiEntropyRuns       int64
	AntiEntropyPartitions int64
	AntiEntropyRows       int64
	AntiEntropyBytes      int64

	RebalancedPartitions int64
	RebalancedRows       int64
	RebalancedBytes      int64
	RebalanceActive      int64

	TierHotReads    int64
	TierColdReads   int64
	FlushedBytes    int64
	Compactions     int64
	IdleCompactions int64
	WarmedRows      int64
	WarmedBytes     int64
	TierHotBytes    int64
	TierWarming     int64
}

// Row is one clustered row inside a partition.
type Row = backend.Row

// hintOp enumerates the mutations a hinted handoff can carry.
type hintOp byte

const (
	hintPut hintOp = iota
	hintDelete
	hintDrop
)

// hint is one mutation a down replica missed, replayed on revive.
type hint struct {
	op                hintOp
	table, pkey, ckey string
	value             []byte
}

// storageNode is one machine. A mutex serializes service, modelling a
// single-disk server; the simulated service time is charged while the
// lock is held so concurrent clients queue exactly as they would on a
// busy node.
type storageNode struct {
	id int

	mu sync.Mutex
	be backend.Backend
	// closed marks the engine torn down (node removed from the cluster);
	// a straggler routed here before the ring swap fails over instead of
	// touching a closed engine.
	closed bool
	// tc, tr and tl are the engine's optional interfaces, asserted once
	// at open so the serve hot path avoids a type switch per operation:
	// tc aggregates cumulative counters into Metrics, tr reports each
	// read's exact cold-row count for the latency surcharge, tl lets the
	// rebalancer enumerate partitions.
	tc backend.TierCounting
	tr backend.TierReader
	tl backend.TableLister

	// down simulates a failed machine: every visit errors until revive.
	down atomic.Bool
	// fault, when non-nil, injects probabilistic errors and/or a latency
	// spike into each visit (InjectFault).
	fault  atomic.Pointer[Fault]
	faultN atomic.Uint64

	// hints queues mutations the node missed while down (or refused
	// through a persistent injected fault), replayed in order by
	// ReviveNode or when InjectFault clears the profile. With a
	// configured HintDir every queued hint is mirrored to hlog, so the
	// queue also survives a process restart (replayed at Open).
	hintMu sync.Mutex
	hints  []hint
	hlog   *hintLog
}

func newStorageNode(id int, be backend.Backend) *storageNode {
	n := &storageNode{id: id, be: be}
	n.tc, _ = be.(backend.TierCounting)
	n.tr, _ = be.(backend.TierReader)
	n.tl, _ = be.(backend.TableLister)
	return n
}

// queueHint queues one missed mutation for replay on revive, iff the
// node is still down. The down check happens under hintMu — the same
// lock ReviveNode holds for its final drain-and-flip — so a hint can
// never be appended after revive decided the queue was empty: the
// writer either lands in a batch the revive loop replays, or observes
// down==false here and must apply the write directly.
func (n *storageNode) queueHint(h hint) bool {
	n.hintMu.Lock()
	defer n.hintMu.Unlock()
	if !n.down.Load() {
		return false
	}
	n.hints = append(n.hints, h)
	if n.hlog != nil {
		n.hlog.append(h)
	}
	return true
}

// forceHint queues a mutation unconditionally — for writes that could
// not be applied to a live node (persistent injected fault, node being
// torn down). Such hints are replayed when the fault profile clears
// (InjectFault) or the node is revived.
func (n *storageNode) forceHint(h hint) {
	n.hintMu.Lock()
	n.hints = append(n.hints, h)
	if n.hlog != nil {
		n.hlog.append(h)
	}
	n.hintMu.Unlock()
}

// drainedHints marks the hint queue fully replayed: the durable log's
// records are all applied, so the log restarts empty. Caller holds
// hintMu with len(hints) == 0.
func (n *storageNode) drainedHints() {
	if n.hlog != nil {
		n.hlog.reset()
	}
}

// Cluster is the distributed store.
type Cluster struct {
	cfg     Config
	latency atomic.Pointer[LatencyModel]

	// topoMu guards the routing state: the node map, the active ring,
	// and — during a rebalance — the pre-change ring plus the set of
	// partitions whose handoff has committed. Operations resolve their
	// routes under a read lock and release it before visiting nodes.
	topoMu  sync.RWMutex
	nodes   map[int]*storageNode
	ring    *ring.Ring
	oldRing *ring.Ring      // non-nil while a rebalance is migrating
	moved   map[string]bool // partitions already handed off (key: table\0pkey)
	rebDone chan struct{}   // closed when the active rebalance finishes
	rebErr  error
	// rebActive covers the whole background migration including the
	// post-commit drop phase (oldRing alone clears at the ring swap).
	rebActive  atomic.Bool
	rebalances atomic.Int64

	// readGate tracks in-flight reads: each read holds the read side
	// from route resolution to the last node visit, and the rebalancer
	// takes the write side once — after the ring swap, before dropping
	// relinquished copies — so no read routed under the old ring can
	// reach a partition after its old copy is dropped.
	readGate sync.RWMutex
	// writeGate serializes writes against partition copies: writers hold
	// the read side from route resolution through the last replica
	// apply; the rebalancer holds the write side while copying one
	// partition (and while dropping), so a copy can never interleave
	// with a write and overwrite a newer value with the one it read.
	writeGate sync.RWMutex

	rr uint64 // round-robin replica selector

	// stamp is the cluster-wide write sequence (see stamp.go): every
	// mutation takes the next value, so any two versions of a row order
	// by stamp. readQ/writeQ are the runtime quorum knobs (SetQuorum).
	stamp  atomic.Uint64
	readQ  atomic.Int32
	writeQ atomic.Int32

	// repairCh feeds the background read-repair worker; pendingRepairs
	// tracks enqueued-but-unapplied tasks so tests can quiesce. stopCh
	// ends the worker and the anti-entropy loop; bg waits them out.
	repairCh       chan repairTask
	pendingRepairs atomic.Int64
	stopOnce       sync.Once
	stopCh         chan struct{}
	bg             sync.WaitGroup

	// aeActive serializes anti-entropy sweeps (background loop vs
	// explicit RepairPartitions calls).
	aeActive atomic.Bool

	reads        atomic.Int64
	writes       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	roundTrips   atomic.Int64
	simWait      atomic.Int64 // nanoseconds

	failovers       atomic.Int64
	degradedReads   atomic.Int64
	underRepWrites  atomic.Int64
	hintedWrites    atomic.Int64
	readRepairs     atomic.Int64
	aeRuns          atomic.Int64
	aeParts         atomic.Int64
	aeRows          atomic.Int64
	aeBytes         atomic.Int64
	rebalancedParts atomic.Int64
	rebalancedRows  atomic.Int64
	rebalancedBytes atomic.Int64

	// tierBase is the engines' cumulative tier-counter totals at the
	// last ResetMetrics, so Metrics reports deltas like the atomic
	// counters do (the HotBytes gauge is exempt).
	tierBaseMu sync.Mutex
	tierBase   backend.TierCounters
}

// Open builds a cluster per the configuration, creating each node's
// storage engine through cfg.Backend (memtable when nil). On factory
// failure, already-created engines are closed.
func Open(cfg Config) (*Cluster, error) {
	cfg.normalize()
	factory := cfg.Backend
	if factory == nil {
		factory = memtable.Factory()
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make(map[int]*storageNode, len(cfg.Nodes)),
		ring:     ring.New(cfg.Nodes, cfg.VirtualNodes, cfg.Replication),
		repairCh: make(chan repairTask, repairQueueDepth),
		stopCh:   make(chan struct{}),
	}
	// Seed the write-sequence stamp from the wall clock so stamps stay
	// monotone across process restarts without scanning the engines for
	// the previous maximum (the counter advances one per write, far
	// slower than nanoseconds pass between sessions).
	c.stamp.Store(uint64(time.Now().UnixNano()))
	c.readQ.Store(int32(cfg.ReadQuorum))
	c.writeQ.Store(int32(cfg.WriteQuorum))
	fail := func(err error) (*Cluster, error) {
		for _, n := range c.nodes {
			n.be.Close()
			if n.hlog != nil {
				n.hlog.Close()
			}
		}
		return nil, err
	}
	for _, id := range cfg.Nodes {
		be, err := factory(id)
		if err != nil {
			return fail(fmt.Errorf("kvstore: open node %d: %w", id, err))
		}
		node := newStorageNode(id, be)
		c.nodes[id] = node
		if cfg.HintDir != "" {
			if err := c.attachHintLog(node, true); err != nil {
				return fail(err)
			}
		}
	}
	lm := cfg.Latency
	c.latency.Store(&lm)
	c.bg.Add(1)
	go c.repairWorker()
	if cfg.AntiEntropyInterval > 0 {
		c.bg.Add(1)
		go c.antiEntropyLoop(cfg.AntiEntropyInterval)
	}
	return c, nil
}

// SetQuorum changes the read/write quorum at runtime (benchmarks sweep
// R/W over one dataset). Zero restores the defaults (R=1, W=all);
// values are clamped to [1, Replication].
func (c *Cluster) SetQuorum(read, write int) {
	c.readQ.Store(int32(clampQuorum(read, 1, c.cfg.Replication)))
	c.writeQ.Store(int32(clampQuorum(write, c.cfg.Replication, c.cfg.Replication)))
}

// Quorum returns the active read and write quorum.
func (c *Cluster) Quorum() (read, write int) {
	return int(c.readQ.Load()), int(c.writeQ.Load())
}

// NewCluster builds a cluster per the configuration, panicking if a
// node's storage engine cannot be created. Use Open for fallible
// (durable) backends; with the default in-memory engine NewCluster
// never panics.
func NewCluster(cfg Config) *Cluster {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetLatency swaps the latency model at runtime. Benchmarks build indexes
// with the model disabled, then enable it for the measured fetch phase.
func (c *Cluster) SetLatency(lm LatencyModel) {
	c.latency.Store(&lm)
}

// Latency returns the current latency model.
func (c *Cluster) Latency() LatencyModel { return *c.latency.Load() }

// Config returns the cluster configuration with Nodes/Machines
// reflecting the current membership (which AddNode/RemoveNode change at
// runtime).
func (c *Cluster) Config() Config {
	cfg := c.cfg
	cfg.Nodes = c.NodeIDs()
	cfg.Machines = len(cfg.Nodes)
	return cfg
}

// Machines returns the number of storage nodes currently in the cluster.
func (c *Cluster) Machines() int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return len(c.nodes)
}

// NodeIDs returns the ids of the current storage nodes, sorted.
func (c *Cluster) NodeIDs() []int {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// nodeList snapshots the node handles, sorted by id, for whole-cluster
// sweeps (flush, close, metrics aggregation).
func (c *Cluster) nodeList() []*storageNode {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	out := make([]*storageNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func hashKey(table, pkey string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))
	h.Write([]byte{0})
	h.Write([]byte(pkey))
	return h.Sum64()
}

// KeyHash exposes the partition-key hash the placement ring consumes
// (benchmarks compare placement schemes over the real key population).
func KeyHash(table, pkey string) uint64 { return hashKey(table, pkey) }

func partKey(table, pkey string) string { return table + "\x00" + pkey }

// routeStack sizes the stack-backed routing buffers: replica sets and
// old∪new owner unions fit without allocating for any plausible
// replication factor.
const routeStack = 8

// route is a resolved owner list: ids and live node handles, aligned.
// The arrays keep hot-path routing allocation-free (the old replicas()
// helper allocated a fresh slice per Get/Put).
type route struct {
	ids   []int
	nodes []*storageNode
	idArr [routeStack]int
	ndArr [routeStack]*storageNode
}

// resolve maps owner ids to live handles, dropping ids with no node
// (possible only transiently around a removal).
func (rt *route) resolve(c *Cluster, ids []int) {
	rt.nodes = rt.ndArr[:0]
	rt.ids = rt.idArr[:0]
	for _, id := range ids {
		if n := c.nodes[id]; n != nil {
			rt.ids = append(rt.ids, id)
			rt.nodes = append(rt.nodes, n)
		}
	}
}

// readRoute resolves the owners a read of (table, pkey) may be served
// by: the pre-change ring while the partition's handoff is pending,
// the active ring otherwise.
func (c *Cluster) readRoute(table, pkey string, rt *route) {
	h := hashKey(table, pkey)
	var buf [routeStack]int
	c.topoMu.RLock()
	r := c.ring
	if c.oldRing != nil && !c.moved[partKey(table, pkey)] {
		r = c.oldRing
	}
	rt.resolve(c, r.Lookup(h, buf[:0]))
	c.topoMu.RUnlock()
}

// writeRoute resolves the replicas a write must reach: the union of old
// and new owners while the partition's handoff is pending (dual-write),
// the active ring's owners otherwise.
func (c *Cluster) writeRoute(table, pkey string, rt *route) {
	h := hashKey(table, pkey)
	var buf, old [routeStack]int
	c.topoMu.RLock()
	ids := c.ring.Lookup(h, buf[:0])
	if c.oldRing != nil && !c.moved[partKey(table, pkey)] {
		for _, id := range c.oldRing.Lookup(h, old[:0]) {
			dup := false
			for _, x := range ids {
				if x == id {
					dup = true
					break
				}
			}
			if !dup {
				ids = append(ids, id)
			}
		}
	}
	rt.resolve(c, ids)
	c.topoMu.RUnlock()
}

// ReplicasOf returns the node ids currently owning the partition,
// primary first. Inspection surface (property tests, topology dumps) —
// the data path routes through the allocation-free internal helpers.
func (c *Cluster) ReplicasOf(table, pkey string) []int {
	var rt route
	c.readRoute(table, pkey, &rt)
	return append([]int(nil), rt.ids...)
}

// simulateWork charges d of service time. Sub-scheduler-granularity
// waits busy-spin for accuracy; anything longer sleeps so that many
// simulated clients can wait concurrently without burning cores.
func simulateWork(d time.Duration) { simulateWorkCtx(context.Background(), d) }

// simulateWorkCtx is simulateWork with an abandonment signal: a sleep
// is cut short when ctx is cancelled, so a caller holding a deadline is
// not stuck behind a long simulated disk wait. The service time was
// already charged to the counters by then — cancellation abandons the
// wait, it does not refund the work the node performed.
func simulateWorkCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if d < 20*time.Microsecond {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
		}
		return
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// errNodeDown is the visit outcome on a failed (or removed) node;
// errNodeFault on an injected transient error. Readers fail over to the
// next replica on either, writers hint the mutation.
var (
	errNodeDown  = errors.New("kvstore: node unavailable")
	errNodeFault = errors.New("kvstore: injected node fault")
)

// serveNode runs f on the node's engine while holding its service lock
// and charges the operation cost for the byte count f reports, plus the
// cold-read surcharge for each row f reports as served from a disk
// tier. The cold count comes from the engine's own per-call accounting
// (backend.TierReader) — never from diffing the engine's cumulative
// counters around the call, which would bill this operation for cold
// rows concurrent operations or the engine's background maintenance
// touched in the meantime. Charging inside the lock models a disk-bound
// server: a node moving many bytes is busy for proportionally long, so
// cluster size m and replication r bound the achievable parallel-fetch
// speedup (paper Figures 11–12).
//
// A down node refuses the visit without charge; an injected fault burns
// a base-op of service time before erroring (the request did reach the
// machine). serveNode returns the simulated service time it charged, so
// batched reads can attribute their exact cost to the calling query
// (CallStats).
func (c *Cluster) serveNode(node *storageNode, f func(be backend.Backend) (n, coldRows int)) (time.Duration, error) {
	return c.serveNodeCtx(context.Background(), node, f)
}

// serveNodeCtx is serveNode with cancellable simulated waiting: the
// service cost is computed and charged to the counters as usual, but
// the in-process sleep modelling it is abandoned once ctx is cancelled
// (the node lock releases early — a real server would keep spinning its
// disk, but nobody is left to wait for it).
func (c *Cluster) serveNodeCtx(ctx context.Context, node *storageNode, f func(be backend.Backend) (n, coldRows int)) (time.Duration, error) {
	if node.down.Load() {
		return 0, errNodeDown
	}
	c.roundTrips.Add(1)
	node.mu.Lock()
	defer node.mu.Unlock()
	if node.closed || node.down.Load() {
		return 0, errNodeDown
	}
	lm := c.Latency()
	var extra time.Duration
	if fl := node.fault.Load(); fl != nil {
		extra = fl.ExtraLatency
		if fl.fires(node) {
			d := lm.Cost(0) + extra
			c.simWait.Add(int64(d))
			simulateWorkCtx(ctx, d)
			return d, errNodeFault
		}
	}
	n, cold := f(node.be)
	d := lm.Cost(n) + extra
	if lm.Enabled && cold > 0 {
		// Each row the operation pulled from the cold tier pays the
		// disk-seek surcharge the hot tier would have absorbed.
		d += time.Duration(cold) * lm.ColdRead
	}
	c.simWait.Add(int64(d))
	simulateWorkCtx(ctx, d)
	return d, nil
}

// writeFaultAttempts bounds a write's visits to a replica with an
// injected fault profile: faults model transient per-visit errors
// (deterministically spread by rate), so retrying a few times lands a
// success for any ErrRate below ~0.75. Only a node that keeps erroring
// (effectively ErrRate 1) falls back to the hint queue.
const writeFaultAttempts = 4

// writeReplica applies one mutation to a single replica. A down node
// gets it queued as a hint (replayed on revive); an injected transient
// fault is retried rather than hinted, because hints on a node that
// never goes through ReviveNode would sit unreplayed while the node
// keeps serving reads; a node that errors persistently gets the hint
// force-queued for replay when its fault profile clears. visit runs the
// mutation on the engine and reports the byte volume to charge.
// Returns whether the mutation ended up hinted instead of applied.
func (c *Cluster) writeReplica(node *storageNode, h hint, visit func(be backend.Backend) int) bool {
	for attempt := 0; attempt < writeFaultAttempts; attempt++ {
		if node.down.Load() && node.queueHint(h) {
			return true
		}
		_, err := c.serveNode(node, func(be backend.Backend) (int, int) {
			return visit(be), 0
		})
		if err == nil {
			return false
		}
		// errNodeFault: retry — the next visit likely succeeds.
		// errNodeDown: loop back to the queueHint path; if the node was
		// concurrently revived instead, the next visit applies directly.
	}
	node.forceHint(h)
	return true
}

// applyWrite runs one mutation on every replica of the route: live
// replicas serve it (retrying transient injected faults), down ones get
// it queued as a hint (replayed on revive) and the write is counted
// under-replicated.
func (c *Cluster) applyWrite(rt *route, bytes int, mk func() hint) {
	short := false
	for _, node := range rt.nodes {
		h := mk()
		if c.writeReplica(node, h, func(be backend.Backend) int {
			applyHint(be, h)
			return bytes
		}) {
			c.hintedWrites.Add(1)
			short = true
		}
	}
	if short {
		c.underRepWrites.Add(1)
	}
}

// applyWriteQuorum fans one mutation out to every replica in parallel
// and returns once w live replicas acknowledged (or every replica
// responded). The stragglers keep running in the background; a
// completion goroutine releases the write gate's read side only after
// the last replica finished, so the rebalancer's and Close's barriers
// still wait out every in-flight apply. Caller holds writeGate.RLock
// and must NOT release it — ownership passes to the completion
// goroutine.
//
// Cross-replica write order is not serialized between concurrent
// writers to the same key once tails run in the background; replica
// application is last-write-wins by stamp under replay/repair, and a
// transiently stale replica is healed by read-repair or anti-entropy.
func (c *Cluster) applyWriteQuorum(rt *route, bytes int, mk func() hint, w int) {
	n := len(rt.nodes)
	if n == 0 {
		c.writeGate.RUnlock()
		return
	}
	if w > n {
		w = n
	}
	res := make(chan bool, n)
	var pending sync.WaitGroup
	var short atomic.Bool
	pending.Add(n)
	for _, node := range rt.nodes {
		go func(node *storageNode) {
			defer pending.Done()
			h := mk()
			hinted := c.writeReplica(node, h, func(be backend.Backend) int {
				applyHint(be, h)
				return bytes
			})
			if hinted {
				c.hintedWrites.Add(1)
				short.Store(true)
			}
			res <- !hinted
		}(node)
	}
	go func() {
		pending.Wait()
		if short.Load() {
			c.underRepWrites.Add(1)
		}
		c.writeGate.RUnlock()
	}()
	acks, replies := 0, 0
	for replies < n && acks < w {
		if <-res {
			acks++
		}
		replies++
	}
}

// applyHint runs one queued mutation against an engine.
func applyHint(be backend.Backend, h hint) {
	switch h.op {
	case hintPut:
		be.Put(h.table, h.pkey, h.ckey, h.value)
	case hintDelete:
		be.Delete(h.table, h.pkey, h.ckey)
	case hintDrop:
		be.DropPartition(h.table, h.pkey)
	}
}

// replayHint is applyHint guarded by the version stamp: a put whose
// stamp is older than the row already present is skipped. Replayed
// hints (revive, fault-clear, reopen) can interleave with writes the
// node accepted live, so blind application could roll a row back.
func replayHint(be backend.Backend, h hint) {
	if h.op == hintPut {
		if cur, ok := be.Get(h.table, h.pkey, h.ckey); ok && stampOf(cur) > stampOf(h.value) {
			return
		}
	}
	applyHint(be, h)
}

// Put writes value under (table, pkey, ckey) on every replica,
// overwriting an existing row. With the default write quorum the call
// returns after every replica applied (or hinted) the write; with
// WriteQuorum w < r it returns after w live acknowledgements and the
// remaining replicas complete in the background.
func (c *Cluster) Put(table, pkey, ckey string, value []byte) {
	v := wrapStamp(c.stamp.Add(1), value)
	c.writeGate.RLock()
	var rt route
	c.writeRoute(table, pkey, &rt)
	mk := func() hint {
		return hint{op: hintPut, table: table, pkey: pkey, ckey: ckey, value: v}
	}
	if w := int(c.writeQ.Load()); w < len(rt.nodes) {
		c.applyWriteQuorum(&rt, len(v), mk, w) // releases writeGate when the tail finishes
	} else {
		c.applyWrite(&rt, len(v), mk)
		c.writeGate.RUnlock()
	}
	c.writes.Add(1)
	c.bytesWritten.Add(int64(len(value)))
}

// Get reads the row at (table, pkey, ckey). With the default read
// quorum one replica serves, failing over to the next on a down or
// faulting node; with ReadQuorum > 1 the read consults that many
// replicas, answers with the newest version by stamp, and queues
// asynchronous read-repair for any replica observed stale. The
// returned slice is the caller's to keep.
func (c *Cluster) Get(table, pkey, ckey string) ([]byte, bool) {
	c.readGate.RLock()
	defer c.readGate.RUnlock()
	var rt route
	c.readRoute(table, pkey, &rt)
	if r := int(c.readQ.Load()); r > 1 {
		stored, found, _, _ := c.quorumGet(context.Background(), &rt, r, table, pkey, ckey)
		c.reads.Add(1)
		if !found {
			return nil, false
		}
		_, val := splitStamp(stored)
		c.bytesRead.Add(int64(len(val)))
		return val, true
	}
	var out []byte
	found := false
	_, ok := c.readOne(&rt, func(node *storageNode) (int, error) {
		tr := node.tr
		_, err := c.serveNode(node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				out, found, cold = tr.GetTier(table, pkey, ckey)
			} else {
				out, found = be.Get(table, pkey, ckey)
			}
			return len(out), cold
		})
		return len(out), err
	})
	c.reads.Add(1)
	if !ok || !found {
		return nil, false
	}
	_, val := splitStamp(out)
	c.bytesRead.Add(int64(len(val)))
	return val, true
}

// readOne serves a read from the first responsive replica, starting at
// the round-robin rotation point (this is where r>1 increases read
// capacity, Fig 12c) and failing over clockwise. Each failed visit
// counts a Failover; an answer from any replica other than the rotation
// choice counts a DegradedRead. Returns false when every replica
// refused.
func (c *Cluster) readOne(rt *route, visit func(node *storageNode) (int, error)) (int, bool) {
	n := len(rt.nodes)
	if n == 0 {
		return 0, false
	}
	start := 0
	if n > 1 {
		start = int(atomic.AddUint64(&c.rr, 1) % uint64(n))
	}
	failed := 0
	for i := 0; i < n; i++ {
		node := rt.nodes[(start+i)%n]
		bytes, err := visit(node)
		if err != nil {
			failed++
			continue
		}
		if failed > 0 {
			c.failovers.Add(int64(failed))
			c.degradedReads.Add(1)
		}
		return bytes, true
	}
	c.failovers.Add(int64(failed))
	return 0, false
}

// ScanPrefix returns all rows in the partition whose clustering key starts
// with prefix, in clustering order, as one contiguous scan (single
// operation cost plus bytes), served by the first responsive replica.
// With ReadQuorum > 1 the scan consults that many replicas, merges the
// newest version of every row by stamp and queues read-repair for
// replicas observed stale or missing rows.
func (c *Cluster) ScanPrefix(table, pkey, prefix string) []Row {
	c.readGate.RLock()
	defer c.readGate.RUnlock()
	var rt route
	c.readRoute(table, pkey, &rt)
	if r := int(c.readQ.Load()); r > 1 {
		rows, _, _ := c.quorumScan(context.Background(), &rt, r, table, pkey, prefix)
		c.reads.Add(1)
		c.bytesRead.Add(int64(unwrapRows(rows)))
		return rows
	}
	var out []Row
	_, ok := c.readOne(&rt, func(node *storageNode) (int, error) {
		tr := node.tr
		total := 0
		_, err := c.serveNode(node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				out, cold = tr.ScanPrefixTier(table, pkey, prefix)
			} else {
				out = be.ScanPrefix(table, pkey, prefix)
			}
			for _, r := range out {
				total += len(r.Value)
			}
			return total, cold
		})
		return total, err
	})
	c.reads.Add(1)
	if !ok {
		return nil
	}
	c.bytesRead.Add(int64(unwrapRows(out)))
	return out
}

// ScanPartition returns every row of the partition in clustering order.
func (c *Cluster) ScanPartition(table, pkey string) []Row {
	return c.ScanPrefix(table, pkey, "")
}

// KeyRef names one row for a batched cluster read. It is the same
// triple the backend layer consumes (backend.KeyRead), so a node's
// batch passes straight through to its engine without conversion.
type KeyRef = backend.KeyRead

// ScanRef names one prefix scan for a batched cluster read.
type ScanRef struct {
	Table, PKey, Prefix string
}

// GetResult is the outcome of one KeyRef of a MultiGet.
type GetResult struct {
	Value []byte
	Found bool
}

// CallStats is the exact accounting of one batched read call: the same
// quantities the cluster-wide Metrics counters accumulate, attributed
// to the call that incurred them (the per-call pattern TierReader
// established for cold-read billing — never diff the shared cumulative
// counters around a call, which would misattribute concurrent work).
// The query layer folds these into per-query plan traces.
type CallStats struct {
	// Reads counts logical operations (one per key or prefix scan).
	Reads int64
	// RoundTrips counts physical storage-node visits.
	RoundTrips int64
	// BytesRead counts the value bytes moved.
	BytesRead int64
	// SimWait is the simulated service time charged to this call.
	SimWait time.Duration
}

// add folds one node visit into the stats under the mutex-free
// assumption that the caller serializes (each batched read accumulates
// its goroutines' visits under its own lock).
func (cs *CallStats) add(reads, bytes int64, wait time.Duration) {
	cs.Reads += reads
	cs.RoundTrips++
	cs.BytesRead += bytes
	cs.SimWait += wait
}

// batch is one storage node's share of a batched read.
type batch struct {
	node *storageNode
	idxs []int
}

// groupByNode picks a read replica once per partition (so all keys of a
// partition travel in the same request) and groups request indexes by
// the chosen storage node. Partitions whose rotation-preferred replica
// is down are assigned the next live replica and counted as degraded;
// partitions with no live replica are left out entirely (their results
// stay zero-valued, like a store miss).
func (c *Cluster) groupByNode(n int, at func(i int) (table, pkey string)) map[int]*batch {
	type part struct{ table, pkey string }
	nodeOf := make(map[part]*storageNode)
	batches := make(map[int]*batch)
	var rt route
	for i := 0; i < n; i++ {
		table, pkey := at(i)
		k := part{table, pkey}
		node, seen := nodeOf[k]
		if !seen {
			c.readRoute(table, pkey, &rt)
			node = c.pickRead(&rt)
			nodeOf[k] = node
		}
		if node == nil {
			continue
		}
		b := batches[node.id]
		if b == nil {
			b = &batch{node: node}
			batches[node.id] = b
		}
		b.idxs = append(b.idxs, i)
	}
	return batches
}

// pickRead chooses the replica to serve one partition's reads: the
// rotation choice when live, else the next live replica (counted as a
// degraded read), else nil.
func (c *Cluster) pickRead(rt *route) *storageNode {
	n := len(rt.nodes)
	if n == 0 {
		return nil
	}
	start := 0
	if n > 1 {
		start = int(atomic.AddUint64(&c.rr, 1) % uint64(n))
	}
	for i := 0; i < n; i++ {
		node := rt.nodes[(start+i)%n]
		if !node.down.Load() {
			if i > 0 {
				c.degradedReads.Add(1)
			}
			return node
		}
	}
	return nil
}

// MultiGet reads a batch of rows, grouping the keys per storage node and
// serving each node's share in one request: one base-latency charge per
// machine round-trip instead of per key (the executor half of the
// query-manager plan, paper Figure 3c). Nodes are visited concurrently,
// so the wall-clock cost is the busiest node's service time. Results are
// positional: out[i] answers refs[i].
func (c *Cluster) MultiGet(refs []KeyRef) []GetResult {
	out, _ := c.MultiGetStats(refs)
	return out
}

// MultiGetStats is MultiGet with exact per-call attribution: the second
// return value reports the logical reads, node round-trips, bytes and
// simulated wait this call (and only this call) charged to the cluster
// counters.
func (c *Cluster) MultiGetStats(refs []KeyRef) ([]GetResult, CallStats) {
	return c.MultiGetStatsCtx(context.Background(), refs)
}

// MultiGetStatsCtx is MultiGetStats with cancellation: node visits not
// yet started when ctx is cancelled are skipped entirely (their results
// stay zero-valued and nothing is charged for them), and a visit
// sleeping out its simulated service time wakes early. The caller must
// check ctx.Err() after the call — results are incomplete once it is
// non-nil, and a Found=false under cancellation means "unknown", not
// "absent". A batch whose node fails mid-visit is retried key by key
// against the remaining replicas (Failovers counts the lost visit).
func (c *Cluster) MultiGetStatsCtx(ctx context.Context, refs []KeyRef) ([]GetResult, CallStats) {
	out := make([]GetResult, len(refs))
	var cs CallStats
	if len(refs) == 0 {
		return out, cs
	}
	c.readGate.RLock()
	defer c.readGate.RUnlock()
	var csMu sync.Mutex
	if r := int(c.readQ.Load()); r > 1 {
		c.multiGetQuorum(ctx, refs, r, out, &cs, &csMu)
		return out, cs
	}
	batches := c.groupByNode(len(refs), func(i int) (string, string) { return refs[i].Table, refs[i].PKey })
	var wg sync.WaitGroup
	for _, b := range batches {
		wg.Add(1)
		go func(b *batch) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			reqs := make([]backend.KeyRead, len(b.idxs))
			for j, i := range b.idxs {
				reqs[j] = refs[i]
			}
			tr := b.node.tr
			var vals [][]byte
			d, err := c.serveNodeCtx(ctx, b.node, func(be backend.Backend) (int, int) {
				cold := 0
				if tr != nil {
					vals, cold = tr.MultiGetTier(reqs)
				} else {
					vals = backend.MultiGet(be, reqs)
				}
				n := 0
				for _, v := range vals {
					n += len(v)
				}
				return n, cold
			})
			if err != nil {
				// The whole node visit failed (it went down or errored
				// under us): retry each key against the other replicas.
				c.failovers.Add(1)
				for _, i := range b.idxs {
					c.retryGet(ctx, refs[i], b.node, out, i, &cs, &csMu)
				}
				return
			}
			total := 0
			for j, i := range b.idxs {
				if v := vals[j]; v != nil {
					_, val := splitStamp(v)
					out[i] = GetResult{Value: val, Found: true}
					total += len(val)
				}
			}
			c.reads.Add(int64(len(b.idxs)))
			c.bytesRead.Add(int64(total))
			csMu.Lock()
			cs.add(int64(len(b.idxs)), int64(total), d)
			csMu.Unlock()
		}(b)
	}
	wg.Wait()
	return out, cs
}

// retryGet re-serves one key of a failed batch from the remaining
// replicas, with the same counter accounting a point Get would have.
func (c *Cluster) retryGet(ctx context.Context, ref KeyRef, exclude *storageNode, out []GetResult, i int, cs *CallStats, csMu *sync.Mutex) {
	var rt route
	c.readRoute(ref.Table, ref.PKey, &rt)
	var val []byte
	found := false
	served := false
	for _, node := range rt.nodes {
		if node == exclude {
			continue
		}
		tr := node.tr
		d, err := c.serveNodeCtx(ctx, node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				val, found, cold = tr.GetTier(ref.Table, ref.PKey, ref.CKey)
			} else {
				val, found = be.Get(ref.Table, ref.PKey, ref.CKey)
			}
			return len(val), cold
		})
		if err != nil {
			c.failovers.Add(1)
			continue
		}
		served = true
		_, val = splitStamp(val)
		c.degradedReads.Add(1)
		c.reads.Add(1)
		if found {
			c.bytesRead.Add(int64(len(val)))
		}
		csMu.Lock()
		cs.add(1, int64(len(val)), d)
		csMu.Unlock()
		break
	}
	if served && found {
		out[i] = GetResult{Value: val, Found: true}
	}
}

// MultiScan runs a batch of prefix scans, grouped per storage node like
// MultiGet: each node serves its share of scans under one base-latency
// charge. out[i] holds the rows of refs[i], in clustering order.
func (c *Cluster) MultiScan(refs []ScanRef) [][]Row {
	out, _ := c.MultiScanStats(refs)
	return out
}

// MultiScanStats is MultiScan with exact per-call attribution (see
// MultiGetStats).
func (c *Cluster) MultiScanStats(refs []ScanRef) ([][]Row, CallStats) {
	return c.MultiScanStatsCtx(context.Background(), refs)
}

// MultiScanStatsCtx is MultiScanStats with cancellation (see
// MultiGetStatsCtx): skipped node visits leave nil row slices, so the
// caller must treat results as incomplete once ctx.Err() is non-nil.
func (c *Cluster) MultiScanStatsCtx(ctx context.Context, refs []ScanRef) ([][]Row, CallStats) {
	out := make([][]Row, len(refs))
	var cs CallStats
	if len(refs) == 0 {
		return out, cs
	}
	c.readGate.RLock()
	defer c.readGate.RUnlock()
	var csMu sync.Mutex
	if r := int(c.readQ.Load()); r > 1 {
		c.multiScanQuorum(ctx, refs, r, out, &cs, &csMu)
		return out, cs
	}
	batches := c.groupByNode(len(refs), func(i int) (string, string) { return refs[i].Table, refs[i].PKey })
	var wg sync.WaitGroup
	for _, b := range batches {
		wg.Add(1)
		go func(b *batch) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			tr := b.node.tr
			total := 0
			d, err := c.serveNodeCtx(ctx, b.node, func(be backend.Backend) (int, int) {
				cold := 0
				for _, i := range b.idxs {
					var rows []Row
					if tr != nil {
						var scanCold int
						rows, scanCold = tr.ScanPrefixTier(refs[i].Table, refs[i].PKey, refs[i].Prefix)
						cold += scanCold
					} else {
						rows = be.ScanPrefix(refs[i].Table, refs[i].PKey, refs[i].Prefix)
					}
					for _, r := range rows {
						total += len(r.Value)
					}
					out[i] = rows
				}
				return total, cold
			})
			if err != nil {
				c.failovers.Add(1)
				for _, i := range b.idxs {
					out[i] = nil // a partial write from inside the failed visit is discarded
					c.retryScan(ctx, refs[i], b.node, out, i, &cs, &csMu)
				}
				return
			}
			total = 0
			for _, i := range b.idxs {
				total += unwrapRows(out[i])
			}
			c.reads.Add(int64(len(b.idxs)))
			c.bytesRead.Add(int64(total))
			csMu.Lock()
			cs.add(int64(len(b.idxs)), int64(total), d)
			csMu.Unlock()
		}(b)
	}
	wg.Wait()
	return out, cs
}

// retryScan re-serves one scan of a failed batch from the remaining
// replicas.
func (c *Cluster) retryScan(ctx context.Context, ref ScanRef, exclude *storageNode, out [][]Row, i int, cs *CallStats, csMu *sync.Mutex) {
	var rt route
	c.readRoute(ref.Table, ref.PKey, &rt)
	for _, node := range rt.nodes {
		if node == exclude {
			continue
		}
		tr := node.tr
		var rows []Row
		total := 0
		d, err := c.serveNodeCtx(ctx, node, func(be backend.Backend) (int, int) {
			cold := 0
			if tr != nil {
				rows, cold = tr.ScanPrefixTier(ref.Table, ref.PKey, ref.Prefix)
			} else {
				rows = be.ScanPrefix(ref.Table, ref.PKey, ref.Prefix)
			}
			for _, r := range rows {
				total += len(r.Value)
			}
			return total, cold
		})
		if err != nil {
			c.failovers.Add(1)
			continue
		}
		total = unwrapRows(rows)
		c.degradedReads.Add(1)
		c.reads.Add(1)
		c.bytesRead.Add(int64(total))
		out[i] = rows
		csMu.Lock()
		cs.add(1, int64(total), d)
		csMu.Unlock()
		return
	}
}

// Delete removes a row from all replicas; it reports whether the row
// existed on any replica that applied the delete. Any-of (rather than
// first-of) matters during a rebalance dual-write window: writeRoute
// lists the new-ring owners first, and a new owner whose handoff has
// not landed yet legitimately lacks the row while the old owner still
// holds it.
func (c *Cluster) Delete(table, pkey, ckey string) bool {
	c.writeGate.RLock()
	defer c.writeGate.RUnlock()
	var rt route
	c.writeRoute(table, pkey, &rt)
	existed := false
	short := false
	for _, node := range rt.nodes {
		var ex bool
		if c.writeReplica(node, hint{op: hintDelete, table: table, pkey: pkey, ckey: ckey},
			func(be backend.Backend) int {
				ex = be.Delete(table, pkey, ckey)
				return 0
			}) {
			c.hintedWrites.Add(1)
			short = true
			continue
		}
		existed = existed || ex
	}
	if short {
		c.underRepWrites.Add(1)
	}
	c.writes.Add(1)
	return existed
}

// DropPartition removes an entire partition from all replicas.
func (c *Cluster) DropPartition(table, pkey string) {
	c.writeGate.RLock()
	defer c.writeGate.RUnlock()
	var rt route
	c.writeRoute(table, pkey, &rt)
	c.applyWrite(&rt, 0, func() hint {
		return hint{op: hintDrop, table: table, pkey: pkey}
	})
	c.writes.Add(1)
}

// PartitionKeys returns all partition keys of a table (union over nodes),
// sorted. Intended for inspection and maintenance, not the data path.
func (c *Cluster) PartitionKeys(table string) []string {
	seen := make(map[string]struct{})
	for _, node := range c.nodeList() {
		node.mu.Lock()
		if !node.closed {
			for _, pk := range node.be.PartitionKeys(table) {
				seen[pk] = struct{}{}
			}
		}
		node.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for pk := range seen {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out
}

// Flush makes every node's accepted writes durable (fsync for disk
// engines) and returns the first error encountered.
func (c *Cluster) Flush() error {
	var firstErr error
	for _, node := range c.nodeList() {
		node.mu.Lock()
		var err error
		if !node.closed {
			err = node.be.Flush()
		}
		node.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("kvstore: flush node %d: %w", node.id, err)
		}
	}
	return firstErr
}

// Quiesce blocks until background write activity settles: quorum-write
// tails still completing on remaining replicas have landed and the
// asynchronous read-repair queue is empty. Rebalances and anti-entropy
// sweeps are not waited on — use WaitRebalance and RepairPartitions for
// those. Useful before comparing replicas or reading repair metrics.
func (c *Cluster) Quiesce() {
	c.writeGate.Lock()
	c.writeGate.Unlock() //nolint:staticcheck // empty critical section is the tail barrier
	for c.pendingRepairs.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// Close flushes and closes every node's engine, waiting out an active
// rebalance first (its streaming must not race the teardown), then the
// background workers (read-repair, anti-entropy) and any quorum-write
// tails still completing. The cluster must not be used afterwards.
func (c *Cluster) Close() error {
	var errs []error
	if err := c.WaitRebalance(); err != nil {
		errs = append(errs, err)
	}
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.bg.Wait()
	// Barrier: a write returned at quorum may still have replica applies
	// in flight; they hold the write gate's read side until done.
	c.writeGate.Lock()
	c.writeGate.Unlock() //nolint:staticcheck // empty critical section is the barrier
	for _, node := range c.nodeList() {
		node.mu.Lock()
		var err error
		if !node.closed {
			node.closed = true
			err = node.be.Close()
		}
		node.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("kvstore: close node %d: %w", node.id, err))
		}
		node.hintMu.Lock()
		if node.hlog != nil {
			if err := node.hlog.Close(); err != nil {
				errs = append(errs, fmt.Errorf("kvstore: close hint log %d: %w", node.id, err))
			}
			node.hlog = nil
		}
		node.hintMu.Unlock()
	}
	return errors.Join(errs...)
}

// tierTotals sums the cumulative tier counters of every node engine
// that tracks them.
func (c *Cluster) tierTotals() backend.TierCounters {
	var t backend.TierCounters
	for _, node := range c.nodeList() {
		if node.tc == nil {
			continue
		}
		tc := node.tc.TierCounters()
		t.HotHits += tc.HotHits
		t.ColdReads += tc.ColdReads
		t.FlushedRows += tc.FlushedRows
		t.FlushedBytes += tc.FlushedBytes
		t.Compactions += tc.Compactions
		t.IdleCompactions += tc.IdleCompactions
		t.WarmedRows += tc.WarmedRows
		t.WarmedBytes += tc.WarmedBytes
		t.HotBytes += tc.HotBytes
		t.Warming += tc.Warming
	}
	return t
}

// Metrics returns a snapshot of the counters.
func (c *Cluster) Metrics() Metrics {
	tiers := c.tierTotals()
	c.tierBaseMu.Lock()
	base := c.tierBase
	c.tierBaseMu.Unlock()
	active := int64(0)
	if c.Rebalancing() {
		active = 1
	}
	return Metrics{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		RoundTrips:   c.roundTrips.Load(),
		SimWait:      time.Duration(c.simWait.Load()),

		Failovers:             c.failovers.Load(),
		DegradedReads:         c.degradedReads.Load(),
		UnderReplicatedWrites: c.underRepWrites.Load(),
		HintedWrites:          c.hintedWrites.Load(),

		ReadRepairs:           c.readRepairs.Load(),
		AntiEntropyRuns:       c.aeRuns.Load(),
		AntiEntropyPartitions: c.aeParts.Load(),
		AntiEntropyRows:       c.aeRows.Load(),
		AntiEntropyBytes:      c.aeBytes.Load(),

		RebalancedPartitions: c.rebalancedParts.Load(),
		RebalancedRows:       c.rebalancedRows.Load(),
		RebalancedBytes:      c.rebalancedBytes.Load(),
		RebalanceActive:      active,

		TierHotReads:    tiers.HotHits - base.HotHits,
		TierColdReads:   tiers.ColdReads - base.ColdReads,
		FlushedBytes:    tiers.FlushedBytes - base.FlushedBytes,
		Compactions:     tiers.Compactions - base.Compactions,
		IdleCompactions: tiers.IdleCompactions - base.IdleCompactions,
		WarmedRows:      tiers.WarmedRows - base.WarmedRows,
		WarmedBytes:     tiers.WarmedBytes - base.WarmedBytes,
		TierHotBytes:    tiers.HotBytes,
		TierWarming:     tiers.Warming,
	}
}

// ResetMetrics zeroes the read/write counters (stored bytes are kept).
// Tier counters are cumulative inside the engines, so the reset records
// a baseline that Metrics subtracts.
func (c *Cluster) ResetMetrics() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.roundTrips.Store(0)
	c.simWait.Store(0)
	c.failovers.Store(0)
	c.degradedReads.Store(0)
	c.underRepWrites.Store(0)
	c.hintedWrites.Store(0)
	c.readRepairs.Store(0)
	c.aeRuns.Store(0)
	c.aeParts.Store(0)
	c.aeRows.Store(0)
	c.aeBytes.Store(0)
	c.rebalancedParts.Store(0)
	c.rebalancedRows.Store(0)
	c.rebalancedBytes.Store(0)
	totals := c.tierTotals()
	c.tierBaseMu.Lock()
	c.tierBase = totals
	c.tierBaseMu.Unlock()
}

// Backup writes a consistent copy of every node engine's durable state
// into dir (one node-NNN subdirectory each, mirroring the Factory
// layouts of the disk engines). The engines snapshot themselves under
// their own locks and copy outside them (backend.Backuper), so reads —
// including reads served by the node being copied — proceed while a
// large backup streams; the caller must not issue writes concurrently
// if the backup is to be cluster-consistent. Engines that are not
// durable (no Backuper) fail the backup, as does an in-flight topology
// change (the copy would mix placements).
func (c *Cluster) Backup(dir string) error {
	if c.Rebalancing() {
		return fmt.Errorf("kvstore: backup: %w", ErrRebalancing)
	}
	for _, node := range c.nodeList() {
		b, ok := node.be.(backend.Backuper)
		if !ok {
			return fmt.Errorf("kvstore: backup: node %d engine (%T) is not durable", node.id, node.be)
		}
		if err := b.Backup(filepath.Join(dir, backend.NodeDir(node.id))); err != nil {
			return fmt.Errorf("kvstore: backup node %d: %w", node.id, err)
		}
	}
	return nil
}

// StoredBytes returns the physical bytes currently stored across all
// replicas (sum of every node engine's live bytes).
func (c *Cluster) StoredBytes() int64 {
	var total int64
	for _, node := range c.nodeList() {
		node.mu.Lock()
		if !node.closed {
			total += node.be.StoredBytes()
		}
		node.mu.Unlock()
	}
	return total
}

// LogicalBytes returns stored bytes divided by the replication factor —
// the index size figure used in Table 1 comparisons.
func (c *Cluster) LogicalBytes() int64 {
	return c.StoredBytes() / int64(c.cfg.Replication)
}

func (c *Cluster) String() string {
	return fmt.Sprintf("kvstore(m=%d, r=%d)", c.Machines(), c.cfg.Replication)
}
