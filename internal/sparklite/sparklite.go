// Package sparklite is the in-process stand-in for Apache Spark that the
// Temporal Graph Analysis Framework executes on (paper §5.2): a lazy,
// partitioned, immutable collection (RDD) with narrow transformations
// (map, filter, flatMap, mapPartitions) and actions (collect, count,
// reduce, foreach), scheduled over a fixed pool of workers. The worker
// count is the "Spark cluster size" axis of the paper's Figure 15c.
package sparklite

import (
	"runtime"
	"sync"
)

// Context owns the worker pool on which RDD actions execute.
type Context struct {
	workers int
}

// NewContext returns a context with the given parallelism; w < 1 uses
// GOMAXPROCS.
func NewContext(w int) *Context {
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: w}
}

// Workers returns the pool size.
func (c *Context) Workers() int { return c.workers }

// RDD is a lazy distributed collection of T split into partitions.
// Transformations build new RDDs; actions evaluate partitions on the
// context's workers.
type RDD[T any] struct {
	ctx   *Context
	parts int
	// compute materializes one partition.
	compute func(p int) []T
	// cache, when non-nil, memoizes computed partitions.
	cache *rddCache[T]
}

type rddCache[T any] struct {
	once []sync.Once
	data [][]T
}

// Parallelize splits items into `parts` hash partitions (round-robin,
// preserving relative order within a partition).
func Parallelize[T any](ctx *Context, items []T, parts int) *RDD[T] {
	if parts < 1 {
		parts = ctx.workers
	}
	if parts < 1 {
		parts = 1
	}
	split := make([][]T, parts)
	for i, it := range items {
		split[i%parts] = append(split[i%parts], it)
	}
	return FromPartitions(ctx, split)
}

// FromPartitions wraps pre-partitioned data (e.g. per-horizontal-partition
// streams arriving from TGI query processors) without copying.
func FromPartitions[T any](ctx *Context, parts [][]T) *RDD[T] {
	if len(parts) == 0 {
		parts = [][]T{nil}
	}
	return &RDD[T]{
		ctx:     ctx,
		parts:   len(parts),
		compute: func(p int) []T { return parts[p] },
	}
}

// Context returns the RDD's execution context.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// materialize computes partition p, consulting the cache when enabled.
func (r *RDD[T]) materialize(p int) []T {
	if r.cache == nil {
		return r.compute(p)
	}
	r.cache.once[p].Do(func() { r.cache.data[p] = r.compute(p) })
	return r.cache.data[p]
}

// Cache memoizes partitions after first evaluation (Spark's persist).
func (r *RDD[T]) Cache() *RDD[T] {
	if r.cache == nil {
		r.cache = &rddCache[T]{once: make([]sync.Once, r.parts), data: make([][]T, r.parts)}
	}
	return r
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return &RDD[U]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []U {
			in := r.materialize(p)
			out := make([]U, len(in))
			for i, v := range in {
				out[i] = f(v)
			}
			return out
		},
	}
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return &RDD[U]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []U {
			var out []U
			for _, v := range r.materialize(p) {
				out = append(out, f(v)...)
			}
			return out
		},
	}
}

// MapPartitions applies f to whole partitions.
func MapPartitions[T, U any](r *RDD[T], f func([]T) []U) *RDD[U] {
	return &RDD[U]{
		ctx:     r.ctx,
		parts:   r.parts,
		compute: func(p int) []U { return f(r.materialize(p)) },
	}
}

// Filter keeps the elements satisfying pred.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	return &RDD[T]{
		ctx:   r.ctx,
		parts: r.parts,
		compute: func(p int) []T {
			var out []T
			for _, v := range r.materialize(p) {
				if pred(v) {
					out = append(out, v)
				}
			}
			return out
		},
	}
}

// runPartitions evaluates every partition on the worker pool and hands
// each result to sink (called concurrently).
func runPartitions[T any](r *RDD[T], sink func(p int, data []T)) {
	w := min(r.ctx.workers, r.parts)
	if w <= 1 {
		for p := 0; p < r.parts; p++ {
			sink(p, r.materialize(p))
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				sink(p, r.materialize(p))
			}
		}()
	}
	for p := 0; p < r.parts; p++ {
		work <- p
	}
	close(work)
	wg.Wait()
}

// Collect evaluates the RDD and returns all elements in partition order.
func (r *RDD[T]) Collect() []T {
	parts := make([][]T, r.parts)
	runPartitions(r, func(p int, data []T) { parts[p] = data })
	var out []T
	for _, d := range parts {
		out = append(out, d...)
	}
	return out
}

// Count returns the number of elements.
func (r *RDD[T]) Count() int {
	var mu sync.Mutex
	total := 0
	runPartitions(r, func(_ int, data []T) {
		mu.Lock()
		total += len(data)
		mu.Unlock()
	})
	return total
}

// Foreach applies f to every element (f must be safe for concurrent
// calls across partitions).
func (r *RDD[T]) Foreach(f func(T)) {
	runPartitions(r, func(_ int, data []T) {
		for _, v := range data {
			f(v)
		}
	})
}

// Reduce folds the elements with the associative function f; ok is false
// for an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, bool) {
	var mu sync.Mutex
	var acc T
	have := false
	runPartitions(r, func(_ int, data []T) {
		if len(data) == 0 {
			return
		}
		local := data[0]
		for _, v := range data[1:] {
			local = f(local, v)
		}
		mu.Lock()
		defer mu.Unlock()
		if !have {
			acc, have = local, true
		} else {
			acc = f(acc, local)
		}
	})
	return acc, have
}
