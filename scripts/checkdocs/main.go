// Command checkdocs is the docs gate of `make docs-check`: it fails
// when an intra-repo markdown link points at a file that does not
// exist, or when a Go package has no package doc comment. CI runs it on
// every push so the README and architecture docs cannot silently rot.
//
// Usage (from the repository root):
//
//	go run ./scripts/checkdocs
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// skipDir reports directories that are never scanned: VCS state and
// any dot-directory (editor/agent state, local tool caches) — those
// hold untracked files, and linting them would make a local run
// diverge from CI's clean checkout.
func skipDir(name string) bool {
	return strings.HasPrefix(name, ".") && name != "."
}

func main() {
	fails := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "checkdocs: "+format+"\n", args...)
		fails++
	}
	if err := checkMarkdownLinks(fail); err != nil {
		fail("%v", err)
	}
	if err := checkPackageDocs(fail); err != nil {
		fail("%v", err)
	}
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", fails)
		os.Exit(1)
	}
	fmt.Println("checkdocs: markdown links and package docs OK")
}

// checkMarkdownLinks verifies that every relative link in every .md
// file resolves to an existing file or directory. External schemes
// (http, https, mailto) and pure #anchors are ignored.
func checkMarkdownLinks(fail func(string, ...any)) error {
	return filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if u, err := url.Parse(target); err == nil && u.Scheme != "" {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fail("%s: broken link %q (%s does not exist)", path, m[1], resolved)
			}
		}
		return nil
	})
}

// checkPackageDocs verifies that every directory holding Go source has
// a package doc comment on at least one non-test file.
func checkPackageDocs(fail func(string, ...any)) error {
	pkgs := map[string]bool{} // dir -> has a doc comment
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		pkgs[dir] = pkgs[dir] || f.Doc != nil
		return nil
	})
	if err != nil {
		return err
	}
	for dir, ok := range pkgs {
		if !ok {
			fail("package in %s has no package doc comment on any non-test file", dir)
		}
	}
	return nil
}
