package core

import (
	"hgs/internal/delta"
)

// storedDelta is one tree delta ready for persistence: the root is stored
// in full; every other node stores its difference from its parent (the
// "derived partitioned snapshot" of §4.3(b)).
type storedDelta struct {
	did  int
	data *delta.Delta
}

type treeNode struct {
	d        *delta.Delta
	children []*treeNode
	did      int
	leafIdx  int // >= 0 for leaves
}

// buildDeltaTree constructs the hierarchical delta tree over the leaf
// snapshots: parents are intersections of their children (paper §4.3(b)),
// the root is stored explicitly, and each child stores child − parent.
// It returns the deltas to persist and, per leaf, the root-to-leaf did
// path whose in-order sum reconstructs the leaf.
func buildDeltaTree(leaves []*delta.Delta, arity int) (stored []storedDelta, leafPaths [][]int) {
	if len(leaves) == 0 {
		return nil, nil
	}
	level := make([]*treeNode, len(leaves))
	for i, d := range leaves {
		level[i] = &treeNode{d: d, leafIdx: i}
	}
	for len(level) > 1 {
		var next []*treeNode
		for i := 0; i < len(level); i += arity {
			end := min(i+arity, len(level))
			group := level[i:end]
			if len(group) == 1 {
				// A lone node is promoted unchanged.
				next = append(next, group[0])
				continue
			}
			ds := make([]*delta.Delta, len(group))
			for j, n := range group {
				ds[j] = n.d
			}
			parent := &treeNode{d: delta.IntersectAll(ds), children: group, leafIdx: -1}
			next = append(next, parent)
		}
		level = next
	}
	root := level[0]

	// Assign dids in BFS order from the root so sibling micro-deltas of
	// one level cluster together on disk.
	queue := []*treeNode{root}
	order := make([]*treeNode, 0, 2*len(leaves))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.did = len(order)
		order = append(order, n)
		queue = append(queue, n.children...)
	}

	// Stored content: root in full, others as difference from parent.
	stored = make([]storedDelta, 0, len(order))
	stored = append(stored, storedDelta{did: root.did, data: root.d})
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		for _, c := range n.children {
			stored = append(stored, storedDelta{did: c.did, data: delta.Diff(c.d, n.d)})
			walk(c)
		}
	}
	walk(root)

	// Leaf paths.
	leafPaths = make([][]int, len(leaves))
	var paths func(n *treeNode, path []int)
	paths = func(n *treeNode, path []int) {
		path = append(path, n.did)
		if n.leafIdx >= 0 && len(n.children) == 0 {
			leafPaths[n.leafIdx] = append([]int(nil), path...)
			return
		}
		for _, c := range n.children {
			paths(c, path)
		}
	}
	paths(root, nil)
	return stored, leafPaths
}
