package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("level", "a level")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("reqs_total", "requests").Value() != 5 {
		t.Fatal("re-lookup did not return the existing counter")
	}
	// Distinct labels are distinct series.
	r.Counter("reqs_total", "requests", L("op", "a")).Add(7)
	if c.Value() != 5 {
		t.Fatal("labeled series aliased the unlabeled one")
	}
}

func TestFuncBackedMetricsSampledAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.CounterFunc("ext_total", "external", func() float64 { return v })
	r.GaugeFunc("ext_level", "external level", func() float64 { return 2 * v })
	s1 := r.Snapshot()
	v = 10
	s2 := r.Snapshot()
	if got := s1.Value("ext_total"); got != 3 {
		t.Fatalf("first sample = %v, want 3", got)
	}
	if got := s2.Value("ext_total"); got != 10 {
		t.Fatalf("second sample = %v, want 10", got)
	}
	if got := s2.Value("ext_level"); got != 20 {
		t.Fatalf("gauge sample = %v, want 20", got)
	}
	if got := s2.Diff(s1).Value("ext_total"); got != 7 {
		t.Fatalf("diff = %v, want 7", got)
	}
	// Re-registering replaces the sampler.
	r.CounterFunc("ext_total", "external", func() float64 { return 99 })
	if got := r.Snapshot().Value("ext_total"); got != 99 {
		t.Fatalf("replaced sampler reads %v, want 99", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.CounterFunc("d", "", func() float64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Values) != 0 || len(s.Hists) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb nullWriter
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter family did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestSnapshotDiffUnderConcurrency exercises the registry's
// snapshot/diff path while counters, gauges and histograms are being
// hammered from many goroutines — the -race half of the registry
// contract. The final quiesced diff must account for every recorded
// event exactly.
func TestSnapshotDiffUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	h := r.Histogram("lat", "latency", nil, L("op", "x"))
	base := r.Snapshot()

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := r.Snapshot()
				_ = s.Diff(base)
				var nw nullWriter
				r.WritePrometheus(&nw)
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	d := r.Snapshot().Diff(base)
	if got := d.Value("ops_total"); got != workers*per {
		t.Fatalf("counter diff = %v, want %d", got, workers*per)
	}
	hs, ok := d.Hist("lat", L("op", "x"))
	if !ok {
		t.Fatal("histogram series missing from snapshot")
	}
	if hs.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*per)
	}
	var bucketSum uint64
	for _, c := range hs.Counts {
		bucketSum += c
	}
	if bucketSum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
}

func TestSnapshotKeysSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "")
	r.Histogram("m_hist", "", nil)
	keys := r.Snapshot().Keys()
	want := []string{"a_total", "z_total", "m_hist"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}
