// Command perfdiff is the perf regression ratchet: it compares two
// hgs-bench -json reports — the previous run (baseline) and the run
// under test (current) — and fails when any experiment pass regressed
// beyond the thresholds.
//
// Usage (from the repository root):
//
//	go run ./scripts/perfdiff -baseline prev.json -current night.json
//
// What ratchets: the deterministic per-pass measurements. KV reads,
// machine round-trips, bytes read and simulated wait are functions of
// the plan and the latency model, not of the host, so a nightly-runner
// noise excuse does not apply — an increase beyond -max-ratio
// (default 1.25x) fails. Allocations per retrieval (the parallel
// experiment's allocs_per_op) ratchet the same way: they are a function
// of the code and the Go version, not of runner load. Cache and negative-hit ratios failing to a
// drop beyond -max-ratio-drop (default 0.10) likewise. Wall-clock
// latency quantiles (p50/p90/p99) are reported for trend reading but
// never fail the run: shared CI runners make them too noisy to gate on.
//
// Tiny baselines are exempt per metric (-noise-floor, default 16):
// going from 2 KV reads to 4 is doubling, not a regression signal.
//
// Exit status: 0 when no pass regressed, 1 on regression, 2 on bad
// input. The perf workflow promotes the current report to baseline only
// on success, so a regressed night keeps ratcheting against the last
// good run instead of normalizing the regression.
package main

import (
	"flag"
	"fmt"
	"os"

	"hgs/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "", "previous run's hgs-bench -json report")
	currentPath := flag.String("current", "", "this run's hgs-bench -json report")
	maxRatio := flag.Float64("max-ratio", 1.25, "fail when a deterministic pass metric exceeds baseline by this factor")
	maxRatioDrop := flag.Float64("max-ratio-drop", 0.10, "fail when a cache or negative-hit ratio drops by more than this (absolute)")
	noiseFloor := flag.Float64("noise-floor", 16, "skip metrics whose baseline value is below this (too small to ratchet)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "perfdiff: both -baseline and -current are required")
		os.Exit(2)
	}
	baseline, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(2)
	}
	current, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfdiff: %v\n", err)
		os.Exit(2)
	}
	if baseline.Scale != current.Scale {
		// Different dataset sizes make every comparison meaningless;
		// treat the baseline as absent rather than failing on garbage.
		fmt.Printf("perfdiff: scale changed (%+v -> %+v); skipping comparison, current run becomes the baseline\n",
			baseline.Scale, current.Scale)
		return
	}
	result := Compare(baseline, current, Thresholds{
		MaxRatio:     *maxRatio,
		MaxRatioDrop: *maxRatioDrop,
		NoiseFloor:   *noiseFloor,
	})
	for _, line := range result.Info {
		fmt.Println("perfdiff:", line)
	}
	for _, line := range result.Regressions {
		fmt.Println("perfdiff: REGRESSION:", line)
	}
	fmt.Printf("perfdiff: %d passes compared, %d regressions\n", result.Compared, len(result.Regressions))
	if len(result.Regressions) > 0 {
		os.Exit(1)
	}
}

func readReport(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := bench.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Thresholds are the ratchet's tolerances.
type Thresholds struct {
	// MaxRatio fails a deterministic count metric (KV reads,
	// round-trips, bytes, simulated wait) above baseline*MaxRatio.
	MaxRatio float64
	// MaxRatioDrop fails a cache/negative-hit ratio that dropped by
	// more than this, absolute.
	MaxRatioDrop float64
	// NoiseFloor skips count metrics whose baseline is below it.
	NoiseFloor float64
}

// Outcome is one comparison's verdict.
type Outcome struct {
	// Compared counts the passes present in both reports.
	Compared int
	// Regressions lists threshold violations (non-empty fails the run).
	Regressions []string
	// Info lists non-failing observations: new or vanished passes and
	// wall-clock quantile movements.
	Info []string
}

// Compare ratchets current against baseline pass by pass.
func Compare(baseline, current *bench.Report, th Thresholds) Outcome {
	type key struct{ id, label string }
	base := make(map[key]bench.PassMetrics)
	for _, r := range baseline.Results {
		for _, p := range r.Passes {
			base[key{r.ID, p.Label}] = p
		}
	}
	var out Outcome
	seen := make(map[key]bool)
	for _, r := range current.Results {
		for _, p := range r.Passes {
			k := key{r.ID, p.Label}
			seen[k] = true
			b, ok := base[k]
			if !ok {
				out.Info = append(out.Info, fmt.Sprintf("%s/%s: new pass, no baseline", k.id, k.label))
				continue
			}
			out.Compared++
			name := k.id + "/" + k.label
			counts := []struct {
				metric   string
				bas, cur float64
			}{
				{"kv_reads", float64(b.KVReads), float64(p.KVReads)},
				{"round_trips", float64(b.RoundTrips), float64(p.RoundTrips)},
				{"bytes_read", float64(b.BytesRead), float64(p.BytesRead)},
				{"simwait_seconds", b.SimWaitSeconds * 1000, p.SimWaitSeconds * 1000}, // compare in ms so the floor bites sanely
				{"allocs_per_op", b.AllocsPerOp, p.AllocsPerOp},
				{"rows_moved", float64(b.RowsMoved), float64(p.RowsMoved)},
				{"kv_writes", float64(b.KVWrites), float64(p.KVWrites)},
			}
			for _, c := range counts {
				if c.bas < th.NoiseFloor {
					continue
				}
				if c.cur > c.bas*th.MaxRatio {
					out.Regressions = append(out.Regressions, fmt.Sprintf(
						"%s: %s %.0f -> %.0f (%.2fx > %.2fx allowed)",
						name, c.metric, c.bas, c.cur, c.cur/c.bas, th.MaxRatio))
				}
			}
			// Read-repairs ratchet against a zero baseline with no noise
			// floor: a healthy serving path that starts finding divergence
			// to repair is a correctness regression at any count.
			if b.ReadRepairs == 0 && p.ReadRepairs > 0 {
				out.Regressions = append(out.Regressions, fmt.Sprintf(
					"%s: read_repairs 0 -> %d (healthy passes must not repair divergence)",
					name, p.ReadRepairs))
			} else if p.ReadRepairs > 0 && float64(p.ReadRepairs) > float64(b.ReadRepairs)*th.MaxRatio {
				out.Regressions = append(out.Regressions, fmt.Sprintf(
					"%s: read_repairs %d -> %d (%.2fx > %.2fx allowed)",
					name, b.ReadRepairs, p.ReadRepairs,
					float64(p.ReadRepairs)/float64(b.ReadRepairs), th.MaxRatio))
			}
			// Anti-entropy volume depends on sweep/serve interleaving:
			// surfaced but never gated.
			if b.AntiEntropyBytes > 0 || p.AntiEntropyBytes > 0 {
				out.Info = append(out.Info, fmt.Sprintf(
					"%s: anti-entropy bytes %d -> %d (repair traffic; not gated)",
					name, b.AntiEntropyBytes, p.AntiEntropyBytes))
			}
			for _, c := range []struct {
				metric   string
				bas, cur float64
			}{
				{"cache_hit_ratio", b.CacheHitRatio, p.CacheHitRatio},
				{"negative_hit_ratio", b.NegativeHitRatio, p.NegativeHitRatio},
			} {
				if c.bas-c.cur > th.MaxRatioDrop {
					out.Regressions = append(out.Regressions, fmt.Sprintf(
						"%s: %s %.3f -> %.3f (drop %.3f > %.3f allowed)",
						name, c.metric, c.bas, c.cur, c.bas-c.cur, th.MaxRatioDrop))
				}
			}
			// Wall-clock quantiles: informational only (CI runner noise).
			if b.P99Seconds > 0 && p.P99Seconds > 2*b.P99Seconds {
				out.Info = append(out.Info, fmt.Sprintf(
					"%s: p99 %.4fs -> %.4fs (wall clock; not gated)", name, b.P99Seconds, p.P99Seconds))
			}
			// Serve-path throughput and shedding: wall-clock-dependent
			// like the quantiles, so surfaced but never gated.
			if b.QPS > 0 && p.QPS < b.QPS/2 {
				out.Info = append(out.Info, fmt.Sprintf(
					"%s: QPS %.0f -> %.0f (wall clock; not gated)", name, b.QPS, p.QPS))
			}
			if b.QPS > 0 || p.QPS > 0 {
				out.Info = append(out.Info, fmt.Sprintf(
					"%s: serve pass qps=%.0f shed=%.1f%% deadline-miss=%.1f%%",
					name, p.QPS, 100*p.ShedRate, 100*p.DeadlineMissRate))
			}
			// Degraded reads depend on failure timing, not query cost:
			// surfaced but never gated.
			if b.DegradedReads > 0 || p.DegradedReads > 0 {
				out.Info = append(out.Info, fmt.Sprintf(
					"%s: degraded reads %d -> %d (replica-down detours; not gated)",
					name, b.DegradedReads, p.DegradedReads))
			}
		}
	}
	for k := range base {
		if !seen[k] {
			out.Info = append(out.Info, fmt.Sprintf("%s/%s: pass vanished from current run", k.id, k.label))
		}
	}
	return out
}
