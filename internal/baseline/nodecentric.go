package baseline

import (
	"fmt"
	"sort"

	"hgs/internal/codec"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/temporal"
)

// NodeCentricIndex is the vertex-centric design of §4.2: one partitioned
// eventlist per node (edge events replicated to both endpoints). Node
// version retrieval is direct; snapshots must read every node's chunks
// (the 2|G| row of Table 1).
type NodeCentricIndex struct {
	store     *kvstore.Cluster
	cdc       codec.Codec
	chunkSize int
	// chunks[node] = number of stored chunks for that node.
	chunks map[graph.NodeID]int
	ids    []graph.NodeID
	end    temporal.Time
}

// NewNodeCentricIndex creates a vertex-centric index with per-node
// eventlist chunks of chunkSize events.
func NewNodeCentricIndex(store *kvstore.Cluster, chunkSize int) *NodeCentricIndex {
	if chunkSize < 1 {
		chunkSize = 100
	}
	return &NodeCentricIndex{store: store, chunkSize: chunkSize, chunks: make(map[graph.NodeID]int)}
}

func (ix *NodeCentricIndex) Name() string { return "node-centric" }

func pkeyNode(id graph.NodeID) string { return fmt.Sprintf("n%020d", uint64(id)) }

func (ix *NodeCentricIndex) Build(events []graph.Event) error {
	if len(events) == 0 {
		return fmt.Errorf("baseline: empty history")
	}
	w := graph.New()
	perNode := make(map[graph.NodeID][]graph.Event)
	for _, e := range events {
		for _, x := range graph.ExpandRemoveNode(w, e) {
			perNode[x.Node] = append(perNode[x.Node], x)
			if x.Kind.IsEdge() && x.Other != x.Node {
				perNode[x.Other] = append(perNode[x.Other], x)
			}
			w.Apply(x)
		}
	}
	ix.end = events[len(events)-1].Time
	ix.ids = ix.ids[:0]
	for id, evs := range perNode {
		ix.ids = append(ix.ids, id)
		n := 0
		for off := 0; off < len(evs); off += ix.chunkSize {
			endOff := min(off+ix.chunkSize, len(evs))
			blob, err := ix.cdc.EncodeEvents(evs[off:endOff])
			if err != nil {
				return err
			}
			ix.store.Put("nodecentric", pkeyNode(id), fmt.Sprintf("c%08d", n), blob)
			n++
		}
		ix.chunks[id] = n
	}
	sort.Slice(ix.ids, func(i, j int) bool { return ix.ids[i] < ix.ids[j] })
	return nil
}

// nodeEvents reads all chunks of one node (one contiguous partition scan).
func (ix *NodeCentricIndex) nodeEvents(id graph.NodeID) ([]graph.Event, error) {
	rows := ix.store.ScanPartition("nodecentric", pkeyNode(id))
	var out []graph.Event
	for _, row := range rows {
		evs, err := ix.cdc.DecodeEvents(row.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, evs...)
	}
	return out, nil
}

func (ix *NodeCentricIndex) StaticNode(id graph.NodeID, tt temporal.Time) (*graph.NodeState, error) {
	evs, err := ix.nodeEvents(id)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	if err := replayPrefix(g, evs, tt); err != nil {
		return nil, err
	}
	if ns := g.Node(id); ns != nil {
		return ns.Clone(), nil
	}
	return nil, nil
}

func (ix *NodeCentricIndex) NodeVersions(id graph.NodeID, ts, te temporal.Time) (*History, error) {
	evs, err := ix.nodeEvents(id)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	if err := replayPrefix(g, evs, ts); err != nil {
		return nil, err
	}
	h := &History{ID: id, Interval: temporal.Interval{Start: ts, End: te}}
	if ns := g.Node(id); ns != nil {
		h.Initial = ns.Clone()
	}
	for _, e := range evs {
		if e.Time > ts && e.Time < te {
			h.Events = append(h.Events, e)
		}
	}
	return h, nil
}

func (ix *NodeCentricIndex) Snapshot(tt temporal.Time) (*graph.Graph, error) {
	// No time-centric path: read every node's partition and replay each
	// node's own events (edge events arrive from both endpoints; applying
	// a replicated event twice converges).
	g := graph.New()
	var lists [][]graph.Event
	for _, id := range ix.ids {
		evs, err := ix.nodeEvents(id)
		if err != nil {
			return nil, err
		}
		lists = append(lists, evs)
	}
	var all []graph.Event
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Other != b.Other {
			return a.Other < b.Other
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Value < b.Value
	})
	for i, e := range all {
		if e.Time > tt {
			break
		}
		if i > 0 && e == all[i-1] {
			continue
		}
		if err := g.Apply(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (ix *NodeCentricIndex) StorageBytes() int64 { return ix.store.LogicalBytes() }
