package kvstore

// Background anti-entropy: the convergence backstop behind hinted
// handoff and read-repair. A sweep groups the cluster's partitions by
// replica owner set, has every live owner build a merkle-style digest
// tree over its copies (root over buckets over per-partition row
// digests — backend.DigestRows, so two engines holding identical rows
// digest identically regardless of engine type), and walks the trees
// top-down: equal roots clear a whole owner pair in one comparison,
// differing buckets narrow to the partitions actually divergent. Only
// those partitions are then repaired — each one's live copies are
// merged newest-row-wins by version stamp (stamp.go) and the losers
// rewritten — under the write gate, with the streamed bytes paced by
// the same rate limit the rebalancer uses.
//
// Deletes are the known gap: the store keeps no tombstones, so a row
// deleted on one replica while another held it is resurrected by the
// merge (present beats absent — the comparator cannot distinguish
// "deleted" from "never arrived"). The query layer's tables are
// append-only, which is why the cluster has never needed tombstones.

import (
	"errors"
	"sort"
	"strconv"
	"time"

	"hgs/internal/backend"
)

// ErrRepairRunning reports a RepairPartitions overlapping an
// anti-entropy sweep already in progress.
var ErrRepairRunning = errors.New("kvstore: anti-entropy repair already running")

// RepairStats summarizes one anti-entropy sweep: how many partitions
// were found divergent and converged, and the rows/bytes streamed to
// do it. Bounded by the diverged share, not the dataset — a healthy
// cluster sweeps to {0, 0, 0}.
type RepairStats struct {
	Partitions int64 `json:"partitions"`
	Rows       int64 `json:"rows"`
	Bytes      int64 `json:"bytes"`
}

// aeBuckets is the merkle tree fan-out: partitions hash into 16
// buckets under the root, so one differing partition re-digests 1/16th
// of the leaf comparisons instead of all of them.
const aeBuckets = 16

type aePartition struct{ table, pkey string }

// aeGroup is one replica set and the partitions it owns.
type aeGroup struct {
	ids   []int
	parts []aePartition
}

// ownerDigest is one owner's merkle tree over a group's partitions.
type ownerDigest struct {
	node    *storageNode
	leaves  map[aePartition]uint64
	buckets [aeBuckets]uint64
	root    uint64
}

// aeBucket places a partition in its merkle bucket by the top bits of
// the placement hash.
func aeBucket(p aePartition) int {
	return int((hashKey(p.table, p.pkey) >> 60) & (aeBuckets - 1))
}

// mixDigest chain-combines digests (FNV-1a step over the 64-bit value).
func mixDigest(h, d uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (d >> i & 0xff)) * 1099511628211
	}
	return h
}

// RepairPartitions runs one full anti-entropy sweep and reports what it
// converged. Only one sweep runs at a time (ErrRepairRunning), and a
// sweep refuses to overlap a topology migration (ErrRebalancing) —
// placement is in flux and the rebalancer is already streaming.
func (c *Cluster) RepairPartitions() (RepairStats, error) {
	if !c.aeActive.CompareAndSwap(false, true) {
		return RepairStats{}, ErrRepairRunning
	}
	defer c.aeActive.Store(false)
	if c.Rebalancing() {
		return RepairStats{}, ErrRebalancing
	}
	c.aeRuns.Add(1)
	var stats RepairStats
	var debt time.Duration
	rate := c.cfg.RebalanceRate
	for _, g := range c.replicaGroups() {
		for _, p := range c.divergedPartitions(g) {
			n := c.repairPartition(p.table, p.pkey, &stats)
			if rate > 0 && n > 0 {
				debt += time.Duration(n) * time.Second / time.Duration(rate)
				if debt > 2*time.Millisecond {
					time.Sleep(debt)
					debt = 0
				}
			}
		}
	}
	c.aeParts.Add(stats.Partitions)
	c.aeRows.Add(stats.Rows)
	c.aeBytes.Add(stats.Bytes)
	return stats, nil
}

// antiEntropyLoop sweeps at the configured interval until Close. A tick
// overlapping an explicit RepairPartitions call or a rebalance is
// skipped — the next one covers whatever that pass missed.
func (c *Cluster) antiEntropyLoop(interval time.Duration) {
	defer c.bg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.RepairPartitions() //nolint:errcheck // busy/rebalancing ticks are skipped by design
		}
	}
}

// replicaGroups enumerates every partition in the cluster (engines
// implementing backend.TableLister) and groups them by owner set under
// the active ring, sorted for determinism.
func (c *Cluster) replicaGroups() []aeGroup {
	c.topoMu.RLock()
	r := c.ring
	nodes := make([]*storageNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.topoMu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })

	seen := make(map[string]bool)
	groups := make(map[string]*aeGroup)
	var buf [routeStack]int
	var keys []string
	for _, node := range nodes {
		if node.tl == nil {
			continue
		}
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			continue
		}
		var parts []aePartition
		for _, table := range node.tl.Tables() {
			for _, pk := range node.be.PartitionKeys(table) {
				parts = append(parts, aePartition{table, pk})
			}
		}
		node.mu.Unlock()
		for _, p := range parts {
			k := partKey(p.table, p.pkey)
			if seen[k] {
				continue
			}
			seen[k] = true
			ids := r.Lookup(hashKey(p.table, p.pkey), buf[:0])
			owners := append([]int(nil), ids...)
			sort.Ints(owners)
			gk := ""
			for _, id := range owners {
				gk += strconv.Itoa(id) + ","
			}
			g := groups[gk]
			if g == nil {
				g = &aeGroup{ids: owners}
				groups[gk] = g
				keys = append(keys, gk)
			}
			g.parts = append(g.parts, p)
		}
	}
	sort.Strings(keys)
	out := make([]aeGroup, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		sort.Slice(g.parts, func(i, j int) bool {
			if g.parts[i].table != g.parts[j].table {
				return g.parts[i].table < g.parts[j].table
			}
			return g.parts[i].pkey < g.parts[j].pkey
		})
		out = append(out, *g)
	}
	return out
}

// digestOwner builds one owner's merkle tree over the group's
// partitions. Returns nil for a down or torn-down owner — it cannot be
// compared (its missed writes sit in the hint queue for revive).
func (c *Cluster) digestOwner(id int, parts []aePartition) *ownerDigest {
	node := c.nodeAt(id)
	if node == nil || node.down.Load() {
		return nil
	}
	od := &ownerDigest{node: node, leaves: make(map[aePartition]uint64, len(parts))}
	dg, _ := node.be.(backend.Digester)
	for _, p := range parts {
		var d uint64
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			return nil
		}
		if dg != nil {
			d = dg.DigestPartition(p.table, p.pkey)
		} else {
			d = backend.DigestRows(node.be.ScanPrefix(p.table, p.pkey, ""))
		}
		node.mu.Unlock()
		od.leaves[p] = d
		od.buckets[aeBucket(p)] = mixDigest(od.buckets[aeBucket(p)], d)
	}
	for _, b := range od.buckets {
		od.root = mixDigest(od.root, b)
	}
	return od
}

// divergedPartitions compares the owners' merkle trees top-down and
// returns the partitions whose copies differ on at least one pair of
// live owners.
func (c *Cluster) divergedPartitions(g aeGroup) []aePartition {
	var ods []*ownerDigest
	for _, id := range g.ids {
		if od := c.digestOwner(id, g.parts); od != nil {
			ods = append(ods, od)
		}
	}
	if len(ods) < 2 {
		return nil
	}
	rootsEqual := true
	for _, od := range ods[1:] {
		if od.root != ods[0].root {
			rootsEqual = false
			break
		}
	}
	if rootsEqual {
		return nil
	}
	var out []aePartition
	for _, p := range g.parts {
		b := aeBucket(p)
		bucketEqual := true
		for _, od := range ods[1:] {
			if od.buckets[b] != ods[0].buckets[b] {
				bucketEqual = false
				break
			}
		}
		if bucketEqual {
			continue
		}
		for _, od := range ods[1:] {
			if od.leaves[p] != ods[0].leaves[p] {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// repairPartition converges one partition's live copies: under the
// write gate (no foreground write can interleave), every live owner's
// rows are merged newest-per-clustering-key by stamp and owners missing
// the winner (or holding an older version) are rewritten. Returns the
// bytes streamed, for the rate limiter — the gate is released before
// the limiter sleeps.
func (c *Cluster) repairPartition(table, pkey string, stats *RepairStats) int64 {
	c.writeGate.Lock()
	defer c.writeGate.Unlock()
	var rt route
	c.writeRoute(table, pkey, &rt)
	type ownerCopy struct {
		node *storageNode
		rows map[string][]byte
	}
	var copies []ownerCopy
	for _, node := range rt.nodes {
		if node.down.Load() {
			continue
		}
		node.mu.Lock()
		if node.closed {
			node.mu.Unlock()
			continue
		}
		rows := node.be.ScanPrefix(table, pkey, "")
		node.mu.Unlock()
		m := make(map[string][]byte, len(rows))
		for _, r := range rows {
			m[r.CKey] = r.Value
		}
		copies = append(copies, ownerCopy{node, m})
	}
	if len(copies) < 2 {
		return 0
	}
	win := make(map[string][]byte)
	for _, cp := range copies {
		for ck, v := range cp.rows {
			if cur, ok := win[ck]; !ok || newerThan(v, cur) {
				win[ck] = v
			}
		}
	}
	var streamed int64
	repaired := false
	for _, cp := range copies {
		for ck, v := range win {
			cur, ok := cp.rows[ck]
			if ok && !newerThan(v, cur) {
				continue
			}
			cp.node.mu.Lock()
			if !cp.node.closed && !cp.node.down.Load() {
				cp.node.be.Put(table, pkey, ck, v)
				repaired = true
				stats.Rows++
				nb := int64(len(ck) + len(v))
				stats.Bytes += nb
				streamed += nb
			}
			cp.node.mu.Unlock()
		}
	}
	if repaired {
		stats.Partitions++
	}
	return streamed
}
