package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hgs/internal/codec"
	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/kvstore"
	"hgs/internal/obs"
	"hgs/internal/temporal"
)

// TGI is the Temporal Graph Index: construction (Index Manager), metadata
// caching and retrieval planning (Query Manager) over a distributed
// key-value store (paper Figure 3c). Every retrieval runs through the
// unified fetch layer (fx): planned key sets, batched per-node reads,
// and the decoded-delta cache.
type TGI struct {
	cfg    Config
	store  *kvstore.Cluster
	cdc    codec.Codec
	meta   *metaStore
	fx     *fetch.Executor
	traces *traceRing
	// opHists caches the per-op latency histogram pair of each
	// operation name, so the retrieval hot path skips the registry's
	// family lookup (sync.Map: written once per op, read per call).
	opHists sync.Map // op string -> *opHist
}

// New creates an index handle over the given store. The store may be
// empty (build with Build/Append) or already contain an index written
// with the same configuration.
func New(store *kvstore.Cluster, cfg Config) *TGI {
	cfg.normalize()
	cdc := codec.Codec{Compress: cfg.Compress}
	t := &TGI{
		cfg:    cfg,
		store:  store,
		cdc:    cdc,
		meta:   newMetaStore(),
		fx:     fetch.NewExecutor(store, cdc, cfg.queryCache()),
		traces: newTraceRing(),
	}
	t.fx.Cache().RegisterObs(cfg.Obs)
	codec.RegisterObs(cfg.Obs)
	return t
}

// queryCache resolves the handle's decoded-delta cache: an injected
// shared cache wins, otherwise a private one is built from CacheBytes.
func (c Config) queryCache() *fetch.Cache {
	if c.Cache != nil {
		return c.Cache
	}
	return fetch.NewCache(c.cacheBudget())
}

// Build constructs a fresh index over the complete event history.
// Events must be chronologically sorted with strictly increasing
// timestamps (a total order over changes; see DESIGN.md).
func Build(store *kvstore.Cluster, cfg Config, events []graph.Event) (*TGI, error) {
	t := New(store, cfg)
	if err := t.BuildAll(events); err != nil {
		return nil, err
	}
	return t, nil
}

// Attach opens an index handle over a store that may already contain a
// persisted index (a durable backend reopened by a new process). When
// graph metadata is found, the configuration it was built with replaces
// cfg — construction parameters are properties of the stored index, not
// of the process reading it — and attached reports true; queries can
// then run without a rebuild. An empty store attaches nothing and the
// handle behaves exactly like New's.
func Attach(store *kvstore.Cluster, cfg Config) (*TGI, bool, error) {
	t := New(store, cfg)
	blob, ok := store.Get(TableGraph, "graph", "info")
	if !ok {
		return t, false, nil
	}
	gm := &GraphMeta{}
	if err := json.Unmarshal(blob, gm); err != nil {
		return nil, false, fmt.Errorf("core: decode persisted graph metadata: %w", err)
	}
	// Construction parameters come from the store; CacheBytes, an
	// injected shared Cache, TracePlans, MaterializeWorkers and the Obs
	// registry are properties of the reading process and survive the
	// adoption.
	t.cfg = gm.Config
	t.cfg.CacheBytes = cfg.CacheBytes
	t.cfg.Cache = cfg.Cache
	t.cfg.TracePlans = cfg.TracePlans
	t.cfg.MaterializeWorkers = cfg.MaterializeWorkers
	t.cfg.Obs = cfg.Obs
	t.cfg.normalize()
	t.cdc = codec.Codec{Compress: t.cfg.Compress}
	t.fx = fetch.NewExecutor(store, t.cdc, t.cfg.queryCache())
	t.fx.Cache().RegisterObs(t.cfg.Obs)
	t.meta.mu.Lock()
	t.meta.graph = gm
	t.meta.mu.Unlock()
	return t, true, nil
}

// Config returns the index configuration.
func (t *TGI) Config() Config { return t.cfg }

// Store returns the backing cluster (used by benchmarks for metrics).
func (t *TGI) Store() *kvstore.Cluster { return t.store }

// CacheStats returns the decoded-delta cache counters (zero when the
// cache is disabled).
func (t *TGI) CacheStats() fetch.CacheStats { return t.fx.Cache().Stats() }

// traceKeep bounds the per-handle plan-trace ring: enough recent
// queries to debug a workload without growing with it.
const traceKeep = 32

// traceRing keeps the most recent plan-trace records of a handle.
type traceRing struct {
	mu     sync.Mutex
	recent []fetch.TraceRecord
}

func newTraceRing() *traceRing { return &traceRing{} }

func (r *traceRing) add(rec fetch.TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent = append(r.recent, rec)
	if len(r.recent) > traceKeep {
		r.recent = append(r.recent[:0], r.recent[len(r.recent)-traceKeep:]...)
	}
}

func (r *traceRing) snapshot() []fetch.TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]fetch.TraceRecord(nil), r.recent...)
}

// opHist is the per-op latency histogram pair: retrieval wall time
// and the simulated storage wait the plan trace attributed.
type opHist struct {
	dur, simWait *obs.Histogram
}

// Per-op latency histogram family names and help texts (the obs
// registry keys hgs.Store metrics are exposed under).
const (
	opDurationFamily = "hgs_op_duration_seconds"
	opDurationHelp   = "Wall time of TGI operations by op (retrievals, append, build)."
	opSimWaitFamily  = "hgs_op_simwait_seconds"
	opSimWaitHelp    = "Simulated storage service time attributed to retrievals by op."
)

// opHistFor returns (creating once) the histogram pair of an op.
func (t *TGI) opHistFor(op string) *opHist {
	if h, ok := t.opHists.Load(op); ok {
		return h.(*opHist)
	}
	h := &opHist{
		dur:     t.cfg.Obs.Histogram(opDurationFamily, opDurationHelp, nil, obs.L("op", op)),
		simWait: t.cfg.Obs.Histogram(opSimWaitFamily, opSimWaitHelp, nil, obs.L("op", op)),
	}
	actual, _ := t.opHists.LoadOrStore(op, h)
	return actual.(*opHist)
}

// startTrace resolves the trace one retrieval should fill and returns
// the finisher its caller must defer. The trace is the caller-supplied
// FetchOptions.Trace when present, else a fresh one when
// Config.TracePlans or an Obs registry asks for per-retrieval
// accounting, else nil (every fetch.Trace method is nil-safe, so
// retrieval code threads the result unconditionally). The finisher
// records an owned trace into the ring — caller-supplied traces belong
// to the caller and are never double-recorded, which also keeps a
// fan-out retrieval (multiple snapshots sharing one outer trace) one
// ring entry — and observes the operation's wall time and trace-
// attributed simulated wait into the per-op latency histograms. For a
// reused caller trace the simulated wait is the delta accumulated
// during this call, so each retrieval observes only its own cost.
func (t *TGI) startTrace(op string, opts *FetchOptions) (tr *fetch.Trace, done func()) {
	start := time.Now()
	own := false
	switch {
	case opts != nil && opts.Trace != nil:
		tr = opts.Trace
		tr.SetOp(op)
	case t.cfg.TracePlans || t.cfg.Obs != nil:
		tr = &fetch.Trace{}
		tr.SetOp(op)
		own = true
	}
	var simBase time.Duration
	if tr != nil && t.cfg.Obs != nil {
		simBase = tr.Record().SimWait
	}
	return tr, func() {
		if own && t.cfg.TracePlans {
			t.traces.add(tr.Record())
		}
		if t.cfg.Obs == nil {
			return
		}
		h := t.opHistFor(op)
		h.dur.Observe(time.Since(start).Seconds())
		if tr != nil {
			h.simWait.Observe((tr.Record().SimWait - simBase).Seconds())
		}
	}
}

// observeDur records one ingest operation's wall time into the per-op
// duration histogram (the write path has no plan trace; its simulated
// wait is charged straight to the cluster counters).
func (t *TGI) observeDur(op string, start time.Time) {
	if t.cfg.Obs == nil {
		return
	}
	t.opHistFor(op).dur.Observe(time.Since(start).Seconds())
}

// PlanTraces returns the handle's most recent per-query plan traces,
// oldest first (empty unless Config.TracePlans is on).
func (t *TGI) PlanTraces() []fetch.TraceRecord { return t.traces.snapshot() }

// TimeRange returns the [first, last] event times covered by the index.
func (t *TGI) TimeRange() (temporal.Time, temporal.Time, error) {
	gm, err := t.loadGraphMeta()
	if err != nil {
		return 0, 0, err
	}
	return gm.Start, gm.End, nil
}

// validateEvents enforces the strictly-increasing-time contract.
func validateEvents(events []graph.Event) error {
	for i := 1; i < len(events); i++ {
		if events[i].Time <= events[i-1].Time {
			return fmt.Errorf("core: event %d time %d not after previous time %d (strictly increasing times required)",
				i, events[i].Time, events[i-1].Time)
		}
	}
	return nil
}
