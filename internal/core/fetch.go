package core

import (
	"context"
	"fmt"
	"sort"

	"hgs/internal/fetch"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

// runParallel executes tasks with c concurrent query-processor workers
// (the paper's QPs, Figure 3c): the query manager plans the key set, the
// fetch executor moves the bytes in per-node batches, and the QPs decode
// and merge in parallel. The worker pool itself lives in the fetch layer
// (fetch.ParallelCtx) so the two halves share one implementation;
// cancellation is checked at task (partition) boundaries.
func runParallel(ctx context.Context, c int, tasks []func() error) error {
	if c < 1 {
		c = 1
	}
	return fetch.ParallelCtx(ctx, c, len(tasks), func(i int) error { return tasks[i]() })
}

// eventLess is a deterministic total order over events: by time, then by
// the remaining fields. Original events have unique times; only the
// build-time expansion of RemoveNode produces same-time groups, and those
// converge to the same state under any order.
func eventLess(a, b graph.Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Other != b.Other {
		return a.Other < b.Other
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

// mergeSortEvents merges per-partition event streams into one
// chronological stream, dropping the duplicates that arise because edge
// events are replicated into both endpoints' micro-eventlists.
func mergeSortEvents(lists [][]graph.Event) []graph.Event {
	var all []graph.Event
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return eventLess(all[i], all[j]) })
	out := all[:0]
	for i, e := range all {
		if i > 0 && e == all[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// GetSnapshot retrieves the state of the graph at time tt (Algorithm 1):
// plan the micro-deltas along the root-to-leaf path nearest below tt in
// every horizontal partition plus the boundary eventlists, execute the
// plan as one batched fetch round (cache-served where hot), sum the
// deltas in path order, then replay the boundary eventlist up to tt.
func (t *TGI) GetSnapshot(tt temporal.Time, opts *FetchOptions) (*graph.Graph, error) {
	tr, done := t.startTrace("snapshot", opts)
	defer done()
	return t.getSnapshot(tt, opts, tr)
}

// getSnapshot is GetSnapshot with an explicit trace, so fan-out
// retrievals (GetSnapshotsAt, k-hop via snapshot) thread their own.
func (t *TGI) getSnapshot(tt temporal.Time, opts *FetchOptions, tr *fetch.Trace) (*graph.Graph, error) {
	g, err := t.getSnapshotStream(tt, opts, tr, nil)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// getSnapshotStream is the snapshot materialization pipeline. When emit
// is nil, the per-partition graphs are combined into one Graph and
// returned. When emit is non-nil, each horizontal partition's owned
// node states are handed to emit as soon as that partition finishes
// materializing (concurrently from the worker pool — emit must be safe
// for concurrent use), nothing is combined, and the returned graph is
// nil: the streaming path never holds the full snapshot in memory.
// Emitted states are the partition graphs' own (not cloned); emit must
// not retain or mutate them past its return unless it copies.
func (t *TGI) getSnapshotStream(tt temporal.Time, opts *FetchOptions, tr *fetch.Trace, emit func(sid int, states []*graph.NodeState) error) (*graph.Graph, error) {
	ctx := opts.ctx()
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	leaf := tm.leafFor(tt)
	path := tm.LeafPaths[leaf]
	ns := t.cfg.HorizontalPartitions
	clients := t.cfg.clients(opts)

	plan := fetch.NewPlan()
	for sid := 0; sid < ns; sid++ {
		for _, did := range path {
			plan.DeltaGroup(tm.TSID, sid, did)
		}
		if leaf < tm.EventlistCount {
			plan.EventGroup(tm.TSID, sid, leaf)
		}
	}
	res, err := t.fx.ExecCtx(ctx, plan, clients, tr)
	if err != nil {
		return nil, err
	}

	// Materialize: per horizontal partition, apply path deltas in
	// root→leaf order (delta sum), then replay that partition's boundary
	// micro-eventlists up to tt. Partitions own disjoint node sets and
	// every event touching a node is replicated into the node's own
	// partition's eventlists, so each sid materializes its nodes
	// completely and in isolation — the whole pipeline parallelizes
	// across materialize workers with no shared graph state. Edge-event
	// replay also creates implicit states for foreign endpoints inside a
	// sid graph; the combine loop keeps only each partition's owned
	// nodes, so the result is identical to a global sequential replay
	// for any worker count. Cache-shared deltas clone their states in;
	// private decodes move them (Result.Merge picks the fast path).
	sidGraphs := make([]*graph.Graph, ns)
	mergeTasks := make([]func() error, 0, ns)
	for sid := 0; sid < ns; sid++ {
		sid := sid
		mergeTasks = append(mergeTasks, func() error {
			sg := graph.New()
			for _, did := range path {
				for _, part := range res.Group(tm.TSID, sid, did) {
					res.Merge(part.Delta, sg)
				}
			}
			if leaf < tm.EventlistCount {
				parts := res.EventGroup(tm.TSID, sid, leaf)
				lists := make([][]graph.Event, 0, len(parts))
				for _, p := range parts {
					lists = append(lists, p.Events)
				}
				for _, e := range mergeSortEvents(lists) {
					if e.Time > tt {
						break
					}
					if err := sg.Apply(e); err != nil {
						return err
					}
				}
			}
			if emit != nil {
				// Stream this partition's owned states out instead of
				// keeping the graph for the combine step.
				var states []*graph.NodeState
				sg.Range(func(nsn *graph.NodeState) bool {
					if t.sidOf(nsn.ID) == sid {
						states = append(states, nsn)
					}
					return true
				})
				return emit(sid, states)
			}
			sidGraphs[sid] = sg
			return nil
		})
	}
	if err := runParallel(ctx, t.cfg.materializeWorkers(), mergeTasks); err != nil {
		return nil, err
	}
	if emit != nil {
		return nil, nil
	}
	g := graph.New()
	for sid, sg := range sidGraphs {
		sg.Range(func(nsn *graph.NodeState) bool {
			if t.sidOf(nsn.ID) == sid {
				g.PutNode(nsn)
			}
			return true
		})
	}
	return g, nil
}

// StreamSnapshot retrieves the snapshot at tt like GetSnapshot but
// never assembles it: each horizontal partition's node states are
// passed to emit as soon as that partition materializes, possibly
// concurrently (emit must be safe for concurrent use and must not
// retain the states). The serve layer's NDJSON snapshot endpoint rides
// this so arbitrarily large snapshots stream in bounded memory.
func (t *TGI) StreamSnapshot(tt temporal.Time, opts *FetchOptions, emit func(sid int, states []*graph.NodeState) error) error {
	tr, done := t.startTrace("snapshot", opts)
	defer done()
	if emit == nil {
		return fmt.Errorf("core: StreamSnapshot requires an emit callback")
	}
	_, err := t.getSnapshotStream(tt, opts, tr, emit)
	return err
}

// planMicroPartition adds one micro-partition's reconstruction chain —
// the path micro-deltas and the boundary micro-eventlist — to a plan.
func planMicroPartition(plan *fetch.Plan, tm *TimespanMeta, sid, pid, leaf int) {
	for _, did := range tm.LeafPaths[leaf] {
		plan.DeltaPart(tm.TSID, sid, did, pid)
	}
	if leaf < tm.EventlistCount {
		plan.EventPart(tm.TSID, sid, leaf, pid)
	}
}

// assembleMicroPartition reconstructs the state at tt of one planned
// micro-partition from an executed plan.
func (t *TGI) assembleMicroPartition(res *fetch.Result, tm *TimespanMeta, sid, pid, leaf int, tt temporal.Time) (*graph.Graph, error) {
	g := graph.New()
	for _, did := range tm.LeafPaths[leaf] {
		if d := res.Part(tm.TSID, sid, did, pid); d != nil {
			res.Merge(d, g)
		}
	}
	if leaf < tm.EventlistCount {
		if evs, ok := res.EventPart(tm.TSID, sid, leaf, pid); ok {
			for _, e := range evs {
				if e.Time > tt {
					break
				}
				if err := g.Apply(e); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// fetchMicroPartition reconstructs the state at time tt of one
// micro-partition (tsid, sid, pid): the path micro-deltas plus the
// boundary micro-eventlist prefix, fetched as a single batched plan.
// This is the unit of work for node and neighborhood queries.
func (t *TGI) fetchMicroPartition(ctx context.Context, tm *TimespanMeta, sid, pid int, tt temporal.Time, tr *fetch.Trace) (*graph.Graph, error) {
	leaf := tm.leafFor(tt)
	plan := fetch.NewPlan()
	planMicroPartition(plan, tm, sid, pid, leaf)
	res, err := t.fx.ExecCtx(ctx, plan, 1, tr)
	if err != nil {
		return nil, err
	}
	return t.assembleMicroPartition(res, tm, sid, pid, leaf, tt)
}

// GetNodeAt retrieves the state of a single node at time tt, or nil if
// the node does not exist then. Only the node's own micro-partition chain
// is read (the entity-centric access path of Table 1's TGI row).
func (t *TGI) GetNodeAt(id graph.NodeID, tt temporal.Time, opts *FetchOptions) (*graph.NodeState, error) {
	tr, done := t.startTrace("node-at", opts)
	defer done()
	return t.getNodeAt(opts.ctx(), id, tt, tr)
}

// getNodeAt is GetNodeAt with an explicit trace (threaded by history
// retrievals for their initial-state fetch).
func (t *TGI) getNodeAt(ctx context.Context, id graph.NodeID, tt temporal.Time, tr *fetch.Trace) (*graph.NodeState, error) {
	tm, err := t.timespanFor(tt)
	if err != nil {
		return nil, err
	}
	sid := t.sidOf(id)
	pid, err := t.pidOf(tm, sid, id)
	if err != nil {
		return nil, err
	}
	g, err := t.fetchMicroPartition(ctx, tm, sid, pid, tt, tr)
	if err != nil {
		return nil, err
	}
	ns := g.Node(id)
	if ns == nil {
		return nil, nil
	}
	return ns.Clone(), nil
}
