package fetch

import (
	"testing"

	"hgs/internal/codec"
	"hgs/internal/graph"
	"hgs/internal/temporal"
)

func mkEvents(pid, n int) []graph.Event {
	evs := make([]graph.Event, n)
	for i := range evs {
		evs[i] = graph.Event{
			Time: temporal.Time(100*pid + i),
			Kind: graph.AddNode,
			Node: graph.NodeID(pid*1000 + i),
		}
	}
	return evs
}

func encEvents(t *testing.T, evs []graph.Event) []byte {
	t.Helper()
	blob, err := codec.Codec{}.EncodeEvents(evs)
	if err != nil {
		t.Fatalf("EncodeEvents: %v", err)
	}
	return blob
}

// TestCacheEventGroupAndPartLookups pins the eventlist entry kind:
// boundary micro-eventlists cache under the same keying and lookup
// contract as micro-deltas, with hits counted in EventlistHits.
func TestCacheEventGroupAndPartLookups(t *testing.T) {
	c := NewCache(1 << 20)
	k := GroupKey{TableEvents, 0, 1, 2}
	e0, e1 := mkEvents(0, 3), mkEvents(1, 4)

	if _, ok := c.EventGroup(k); ok {
		t.Fatal("empty cache served an event group")
	}
	// Install pid-descending; lookups must come back pid-ascending.
	c.AddEventGroup(k, []EventPart{{PID: 1, Events: e1}, {PID: 0, Events: e0}}, []int64{64, 64})
	parts, ok := c.EventGroup(k)
	if !ok || len(parts) != 2 || parts[0].PID != 0 || parts[1].PID != 1 {
		t.Fatalf("event group = %+v, ok=%v", parts, ok)
	}
	if len(parts[0].Events) != 3 || len(parts[1].Events) != 4 {
		t.Fatalf("event group part sizes = %d/%d", len(parts[0].Events), len(parts[1].Events))
	}
	evs, found, known := c.EventPart(PartKey{TableEvents, 0, 1, 2, 1})
	if !found || !known || len(evs) != 4 {
		t.Fatalf("event part = %v found=%v known=%v", evs, found, known)
	}
	// A pid the complete group lacks is authoritatively absent.
	if _, found, known := c.EventPart(PartKey{TableEvents, 0, 1, 2, 9}); found || !known {
		t.Fatalf("absent pid of a complete group: found=%v known=%v", found, known)
	}
	// An eventlist group never answers for the deltas key space.
	if _, ok := c.Group(GroupKey{TableDeltas, 0, 1, 2}); ok {
		t.Fatal("eventlist entry leaked into the deltas key space")
	}
	st := c.Stats()
	if st.EventlistHits < 2 {
		t.Fatalf("EventlistHits = %d, want >= 2", st.EventlistHits)
	}
	if st.NegativeHits == 0 {
		t.Fatal("complete-group absence answer did not count as a negative hit")
	}
}

// TestCacheEventPartIncompleteAndNegative pins the point-read
// lifecycle of eventlist entries: single installed parts answer
// without completing the group, negative markers record absence, and a
// later install of the marked row drops the stale marker.
func TestCacheEventPartIncompleteAndNegative(t *testing.T) {
	c := NewCache(1 << 20)
	k := PartKey{TableEvents, 3, 0, 1, 2}
	c.AddEventPart(k, mkEvents(2, 5), 64)

	if _, ok := c.EventGroup(k.group()); ok {
		t.Fatal("incomplete entry served a whole event group")
	}
	if evs, found, known := c.EventPart(k); !found || !known || len(evs) != 5 {
		t.Fatalf("resident event part: evs=%v found=%v known=%v", evs, found, known)
	}
	// A sibling pid of the incomplete entry is unknown — read the store.
	other := PartKey{TableEvents, 3, 0, 1, 7}
	if _, found, known := c.EventPart(other); found || known {
		t.Fatalf("unknown pid of an incomplete entry: found=%v known=%v", found, known)
	}
	// A negative marker makes that absence authoritative.
	c.AddNegative(other)
	if _, found, known := c.EventPart(other); found || !known {
		t.Fatalf("marked-absent pid: found=%v known=%v", found, known)
	}
	// The row appears after all (Append wrote it): install must clear
	// the marker and serve the events.
	c.AddEventPart(other, mkEvents(7, 2), 32)
	if evs, found, known := c.EventPart(other); !found || !known || len(evs) != 2 {
		t.Fatalf("after marker clear: evs=%v found=%v known=%v", evs, found, known)
	}
	// An empty complete group is a group-wide absence answer.
	empty := GroupKey{TableEvents, 9, 9, 9}
	c.AddEventGroup(empty, nil, nil)
	if parts, ok := c.EventGroup(empty); !ok || len(parts) != 0 {
		t.Fatalf("empty complete group: parts=%v ok=%v", parts, ok)
	}
}

// TestExecutorCachesEventlists pins the executor integration: a planned
// event group decodes once, the warm rerun is served entirely from the
// cache (no store traffic), and point reads of pids the scanned group
// provably lacks never reach the store.
func TestExecutorCachesEventlists(t *testing.T) {
	st := newFakeStore()
	e0, e1 := mkEvents(0, 4), mkEvents(1, 6)
	st.put(TableEvents, PlacementKey(0, 0), EventCKey(2, 0), encEvents(t, e0))
	st.put(TableEvents, PlacementKey(0, 0), EventCKey(2, 1), encEvents(t, e1))
	ex := NewExecutor(st, codec.Codec{}, NewCache(1<<20))

	for pass := 0; pass < 2; pass++ {
		plan := NewPlan()
		plan.EventGroup(0, 0, 2)
		res, err := ex.Exec(plan, 2)
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
		parts := res.EventGroup(0, 0, 2)
		if len(parts) != 2 || parts[0].PID != 0 || parts[1].PID != 1 {
			t.Fatalf("pass %d: event group = %+v", pass, parts)
		}
		if len(parts[0].Events) != 4 || len(parts[1].Events) != 6 {
			t.Fatalf("pass %d: part sizes = %d/%d", pass, len(parts[0].Events), len(parts[1].Events))
		}
	}
	if st.scans != 1 {
		t.Fatalf("event group scanned %d times; the cache should serve the rerun", st.scans)
	}
	if hits := ex.Cache().Stats().EventlistHits; hits == 0 {
		t.Fatal("warm event-group rerun recorded no eventlist hits")
	}
	// A point read of a pid the complete group lacks: answered from the
	// cache, no store traffic.
	p := NewPlan()
	p.EventPart(0, 0, 2, 42)
	res, err := ex.Exec(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.EventPart(0, 0, 2, 42); ok {
		t.Fatal("absent event part returned rows")
	}
	if st.gets != 0 {
		t.Fatalf("known-absent event part read the store (%d gets)", st.gets)
	}
}

// TestCacheAdaptiveProtectedShare pins the adaptation loop: a workload
// whose hits land in probation (fresh entries proving reuse) shrinks
// the protected share below its initial value; a workload hammering
// one resident hot entry grows it toward the ceiling.
func TestCacheAdaptiveProtectedShare(t *testing.T) {
	// Shrink: every hit is a fresh probation entry's first (promoting)
	// hit, so probation wins each adaptation window outright.
	c := NewCache(1 << 20)
	for i := 0; i < 3*adaptWindow; i++ {
		k := PartKey{TableDeltas, 0, 0, i, 0}
		c.AddPart(k, mkDelta(graph.NodeID(i)), 16)
		if _, known := c.Part(k); !known {
			t.Fatalf("fresh part %d missed", i)
		}
	}
	if got := c.Stats().ProtectedShare; got >= initialProtectedShare {
		t.Fatalf("probation-dominated workload: share = %.2f, want < %.2f", got, initialProtectedShare)
	}

	// Grow: after the first promoting hit, every hit lands in the
	// protected segment, so protection wins each window.
	c = NewCache(1 << 20)
	k := PartKey{TableDeltas, 0, 0, 0, 0}
	c.AddPart(k, mkDelta(1), 16)
	for i := 0; i < 3*adaptWindow; i++ {
		if _, known := c.Part(k); !known {
			t.Fatal("hot part missed")
		}
	}
	st := c.Stats()
	if st.ProtectedShare <= initialProtectedShare {
		t.Fatalf("protected-dominated workload: share = %.2f, want > %.2f", st.ProtectedShare, initialProtectedShare)
	}
	if st.ProtectedShare > maxProtectedShare+1e-9 || st.ProtectedShare < minProtectedShare-1e-9 {
		t.Fatalf("share %.2f escaped [%.2f, %.2f]", st.ProtectedShare, minProtectedShare, maxProtectedShare)
	}
}
